// Per-round collision resolution, two-sided and direction-optimizing.
//
// Usage per round: BeginRound(direction); AddTransmitter(u, payload) for
// every transmitting node; ResolveListener(v) for every listening node.
// A node must be registered as transmitter at most once per round (checked).
//
// Two resolution directions with identical semantics but different cost:
//   * kPush — AddTransmitter scans the transmitter's CSR neighbor row and
//     delivers into epoch-stamped per-listener buffers; ResolveListener is
//     O(1). Round cost O(Σ deg(transmitter)).
//   * kPull — AddTransmitter is O(1) (epoch-stamps a transmitter bitset +
//     payload slot); ResolveListener scans the *listener's* CSR neighbor row
//     against the bitset. Round cost O(Σ deg(listener)).
// The scheduler picks per round via the degree-sum cost model (borrowing the
// direction-optimizing idea from BFS engines), so round cost tracks
// min(transmit-side work, listen-side work). BeginRound is O(1) either way.
//
// Fading (SetLoss) is counter-based: link (tx → rx) in round r is erased iff
// CounterHashUnit(seed, r, tx, rx) < loss — a pure function of the tuple, no
// stream state. Both directions therefore see byte-identical erasures, and
// lossy sweeps stay bit-identical across job counts and resolution modes.
//
// Residual compaction (AttachResidual): when a ResidualGraph overlay is
// attached, both directions scan its live row prefixes instead of full CSR
// rows, so per-round cost tracks live edges. Correctness relies on the
// retirement contract (a retired node never transmits or listens again):
//   * push — a live listener adjacent to transmitter u has a live edge to u,
//     so it appears in u's prefix; deliveries to dead prefix entries write
//     buffers nobody will read.
//   * pull — a retired prefix entry can never satisfy tx_mark_[u] == epoch_,
//     because it never transmits again.
//
// Payload tie-break (pinned contract, see test_residual_compaction.cpp):
// when a listener hears ≥ 2 surviving transmitters, the pull scan keeps the
// LAST transmitting neighbor in row order while the push path keeps the
// FIRST delivered. The divergence is unobservable: Perceive() only surfaces
// a payload when the surviving count is exactly 1 (CD/no-CD collisions
// report payload 0 or silence; beeps are contentless). Residual compaction
// preserves even the internal order — it is a stable partition, so
// surviving entries keep their relative CSR position.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/contracts.hpp"
#include "radio/channel_kernels.hpp"
#include "radio/graph.hpp"
#include "radio/model.hpp"
#include "radio/rng.hpp"

namespace emis {

class Channel {
 public:
  /// The graph must outlive the channel.
  Channel(const Graph& graph, ChannelModel model)
      : graph_(&graph),
        model_(model),
        epoch_mark_(graph.NumNodes(), 0),
        hear_count_(graph.NumNodes(), 0),
        hear_payload_(graph.NumNodes(), 0),
        tx_mark_(graph.NumNodes(), 0),
        tx_payload_(graph.NumNodes(), 0),
        tx_words_((static_cast<std::size_t>(graph.NumNodes()) + 63) / 64) {}

  ChannelModel Model() const noexcept { return model_; }

  /// Attaches a residual overlay (owned by the scheduler, must outlive the
  /// channel or be detached with nullptr): scans iterate its live row
  /// prefixes instead of full CSR rows. Receptions are identical with or
  /// without an overlay — this is purely a cost knob.
  void AttachResidual(const ResidualGraph* residual) noexcept {
    residual_ = residual;
  }

  /// Enables per-link fading: every (transmitter, listener) signal is
  /// independently erased with probability `loss` each round. An erased
  /// signal neither delivers nor interferes (it does not contribute to
  /// collisions). loss = 0 restores the paper's reliable channel.
  ///
  /// Erasure is drawn from the counter-based per-link hash stream
  /// LinkErased(round, tx, rx, seed) — a pure function of the link and the
  /// round counter, not of draw order — so the fade pattern is identical
  /// under push and pull resolution and across parallel-sweep job counts.
  void SetLoss(double loss, std::uint64_t seed) {
    EMIS_EXPECTS(loss >= 0.0 && loss < 1.0, "loss probability in [0, 1)");
    loss_ = loss;
    loss_seed_ = seed;
  }
  double Loss() const noexcept { return loss_; }

  /// Whether the directed signal tx → rx fades out in `round`. Pure in its
  /// arguments; exposed so tests can pin the stream against golden values.
  static bool LinkErased(std::uint64_t round, NodeId tx, NodeId rx,
                         std::uint64_t seed, double loss) noexcept {
    return CounterHashUnit(seed, round, tx, rx) < loss;
  }

  /// Starts the next round, resolving it in the given direction. O(1).
  void BeginRound(ChannelDirection direction = ChannelDirection::kPush) noexcept {
    ++epoch_;
    direction_ = direction;
  }

  ChannelDirection Direction() const noexcept { return direction_; }

  /// Registers node u as transmitting `payload` this round. Registering the
  /// same node twice in one round violates the radio model (one action per
  /// node per round) and throws InvariantError instead of double-delivering.
  void AddTransmitter(NodeId u, std::uint64_t payload) {
    EMIS_INVARIANT(tx_mark_[u] != epoch_,
                   "node registered as transmitter twice in one round");
    tx_mark_[u] = epoch_;
    tx_payload_[u] = payload;
    // Mirror into the packed per-word bitset (lazily cleared by epoch stamp)
    // that the word-parallel pull scan probes.
    TxWord& word = tx_words_[u >> 6];
    if (word.epoch != epoch_) {
      word.epoch = epoch_;
      word.bits = 0;
    }
    word.bits |= 1ULL << (u & 63);
    if (direction_ == ChannelDirection::kPull) return;  // resolved lazily
    const auto nbrs = ScanRow(u);
    if (loss_ > 0.0) {
      for (NodeId w : nbrs) {
        if (!LinkErased(epoch_, u, w, loss_seed_, loss_)) Deliver(w, payload);
      }
      return;
    }
    for (NodeId w : nbrs) Deliver(w, payload);
  }

  // --- Sharded transmitter registration (DESIGN.md §13) -------------------
  //
  // The sharded scheduler splits a round's transmit pass across workers,
  // one contiguous node range per shard. Each worker stamps its
  // transmitters into its own TxShardBuffer (per-node tx_mark_/tx_payload_
  // entries are disjoint across shards, so those are written directly; the
  // packed word bitset goes through the buffer), and the scheduler then
  // OR-merges the buffers into tx_words_ serially, in fixed shard order.
  // Shard cuts need not be 64-aligned: a boundary word shared by two shards
  // is set independently in each buffer and unioned by the serial merge.
  // After the merge the channel state is byte-identical to what the same
  // AddTransmitter sequence would have produced in pull mode.

  /// One shard's transmitter bitset: the words covering its node range,
  /// kept all-zero between rounds, plus the list of word indices touched
  /// this round (so the merge and the reset cost O(touched), not O(range)).
  struct TxShardBuffer {
    std::size_t word_begin = 0;            ///< global index of words[0]
    std::vector<std::uint64_t> words;      ///< local bitset, zero when idle
    std::vector<std::uint32_t> touched;    ///< local indices of nonzero words
  };

  /// Sizes `buffer` for the node range [node_begin, node_end): the
  /// inclusive span of words those nodes' bits fall in (empty ranges get no
  /// words).
  void InitShardBuffer(TxShardBuffer& buffer, NodeId node_begin,
                       NodeId node_end) const {
    EMIS_EXPECTS(node_begin <= node_end && node_end <= graph_->NumNodes(),
                 "shard range out of bounds");
    buffer.word_begin = node_begin >> 6;
    const std::size_t words =
        node_begin == node_end
            ? 0
            : (static_cast<std::size_t>(node_end - 1) >> 6) - buffer.word_begin + 1;
    buffer.words.assign(words, 0);
    buffer.touched.clear();
    buffer.touched.reserve(buffer.words.size());
  }

  /// Shard-local counterpart of AddTransmitter for pull-resolved rounds:
  /// stamps u's per-node transmitter state and sets its bit in the shard
  /// buffer. Safe to call concurrently for nodes of *different* shards; u
  /// must lie in `buffer`'s node range. The same double-registration
  /// invariant as AddTransmitter applies.
  void StampTransmitter(TxShardBuffer& buffer, NodeId u, std::uint64_t payload) {
    EMIS_INVARIANT(direction_ == ChannelDirection::kPull,
                   "sharded stamping requires pull resolution");
    EMIS_INVARIANT(tx_mark_[u] != epoch_,
                   "node registered as transmitter twice in one round");
    tx_mark_[u] = epoch_;
    tx_payload_[u] = payload;
    const std::size_t local = (u >> 6) - buffer.word_begin;
    if (buffer.words[local] == 0) buffer.touched.push_back(
        static_cast<std::uint32_t>(local));
    buffer.words[local] |= 1ULL << (u & 63);
  }

  /// Merges one shard's buffer into the global epoch-stamped word bitset
  /// and resets the buffer for the next round. Called serially, in fixed
  /// shard order, after every shard's stamp pass completed. Returns the
  /// number of words merged (the `chan.merge_words` observable).
  std::size_t MergeTxShard(TxShardBuffer& buffer) {
    for (const std::uint32_t local : buffer.touched) {
      TxWord& word = tx_words_[buffer.word_begin + local];
      if (word.epoch != epoch_) {
        word.epoch = epoch_;
        word.bits = buffer.words[local];
      } else {
        word.bits |= buffer.words[local];
      }
      buffer.words[local] = 0;
    }
    const std::size_t merged = buffer.touched.size();
    buffer.touched.clear();
    return merged;
  }

  /// What listener v perceives this round under the channel model.
  /// The transmitter set for the round must be fully registered first.
  Reception ResolveListener(NodeId v) const {
    // Epoch consistency: per-listener and per-transmitter stamps are only
    // ever written with the current epoch, so a stamp from the future means
    // the epoch counter ran backwards (or state was corrupted) — receptions
    // computed from it would silently mix rounds.
    EMIS_INVARIANT(epoch_mark_[v] <= epoch_ && tx_mark_[v] <= epoch_,
                   "channel epoch consistency violated: stamp from a future round");
    if (direction_ == ChannelDirection::kPull) {
      const auto [count, payload] = ScanTransmittingNeighbors(v);
      return Perceive(count, payload);
    }
    const bool heard = epoch_mark_[v] == epoch_;
    return Perceive(heard ? hear_count_[v] : 0, heard ? hear_payload_[v] : 0);
  }

  /// Number of transmitting neighbors of v whose signal survived fading this
  /// round (model-independent ground truth; used by tests and
  /// instrumentation, not by protocols).
  std::uint32_t TransmittingNeighbors(NodeId v) const {
    if (direction_ == ChannelDirection::kPull) {
      return ScanTransmittingNeighbors(v).count;
    }
    return epoch_mark_[v] == epoch_ ? hear_count_[v] : 0;
  }

  /// Test-only: forces the epoch counter to an arbitrary value, bypassing
  /// BeginRound. Used to demonstrate that the epoch-consistency invariant
  /// trips (see test_contracts.cpp); never called by library code.
  void CorruptEpochForTesting(std::uint64_t epoch) noexcept { epoch_ = epoch; }

 private:
  struct Heard {
    std::uint32_t count = 0;
    std::uint64_t payload = 0;
  };

  /// The entries a scan must visit for v: the residual live prefix when an
  /// overlay is attached, else the full CSR row. Sorted ascending either way.
  std::span<const NodeId> ScanRow(NodeId v) const {
    return residual_ != nullptr ? residual_->ScanRow(v) : graph_->Neighbors(v);
  }

  /// Rows at least this long resolve pull-side via the packed word bitset:
  /// 64 candidate ids per 16-byte probe instead of one 8-byte tx_mark_ load
  /// per neighbor. Below it the plain scan's simpler loop wins. Receptions
  /// are identical on both paths (same neighbors, same visit order), so the
  /// threshold is purely a cost knob.
  static constexpr std::size_t kWordScanMinRow = 32;

  /// Pull-side resolution: scan v's row against the transmitter set. Keeps
  /// the LAST transmitting row entry's payload — unobservable unless the
  /// surviving count is exactly 1 (see the tie-break note atop this file).
  Heard ScanTransmittingNeighbors(NodeId v) const {
    const std::span<const NodeId> row = ScanRow(v);
    if (row.size() >= kWordScanMinRow) return ScanRowByWords(v, row);
    Heard h;
    if (loss_ > 0.0) {
      for (NodeId u : row) {
        if (tx_mark_[u] == epoch_ && !LinkErased(epoch_, u, v, loss_seed_, loss_)) {
          ++h.count;
          h.payload = tx_payload_[u];
        }
      }
      return h;
    }
    for (NodeId u : row) {
      if (tx_mark_[u] == epoch_) {
        ++h.count;
        h.payload = tx_payload_[u];
      }
    }
    return h;
  }

  /// Word-parallel pull scan for high-degree rows. The loss-free path
  /// dispatches to the runtime-selected kernel (AVX2 gathers when the CPU
  /// has them, the portable cached-word loop otherwise — see
  /// radio/channel_kernels.hpp); both report the exact count and the LAST
  /// transmitting row position, so receptions are byte-identical to the
  /// plain scan. Lossy rows need a per-link erasure draw in row visit order
  /// and keep the scalar loop.
  Heard ScanRowByWords(NodeId v, std::span<const NodeId> row) const {
    Heard h;
    if (loss_ == 0.0) {
      const chan_kernels::ScanHits hits =
          scan_fn_(row.data(), row.size(), tx_words_.data(), epoch_);
      h.count = hits.count;
      if (hits.last_hit != chan_kernels::kNoHit) {
        h.payload = tx_payload_[row[hits.last_hit]];
      }
      return h;
    }
    std::size_t cached_index = ~std::size_t{0};
    std::uint64_t cached_bits = 0;
    for (NodeId u : row) {
      const std::size_t index = u >> 6;
      if (index != cached_index) {
        cached_index = index;
        const TxWord& word = tx_words_[index];
        cached_bits = word.epoch == epoch_ ? word.bits : 0;
      }
      if (((cached_bits >> (u & 63)) & 1u) == 0) continue;
      if (LinkErased(epoch_, u, v, loss_seed_, loss_)) continue;
      ++h.count;
      h.payload = tx_payload_[u];
    }
    return h;
  }

  /// Maps a surviving-transmitter count to a Reception under the model.
  /// Shared by both directions, so they cannot drift apart.
  Reception Perceive(std::uint32_t count, std::uint64_t payload) const {
    switch (model_) {
      case ChannelModel::kCd:
        if (count == 0) return {ReceptionKind::kSilence, 0};
        if (count == 1) return {ReceptionKind::kMessage, payload};
        return {ReceptionKind::kCollision, 0};
      case ChannelModel::kNoCd:
        // A collision is indistinguishable from silence.
        if (count == 1) return {ReceptionKind::kMessage, payload};
        return {ReceptionKind::kSilence, 0};
      case ChannelModel::kBeeping:
        // Any number of beeping neighbors is a single contentless beep.
        if (count >= 1) return {ReceptionKind::kBeep, 0};
        return {ReceptionKind::kSilence, 0};
    }
    EMIS_UNREACHABLE("unhandled channel model");
  }

  /// Push-side delivery; the FIRST delivered payload sticks (see the
  /// tie-break note atop this file — only count == 1 payloads are ever
  /// observable, so push/pull cannot drift apart).
  void Deliver(NodeId w, std::uint64_t payload) noexcept {
    if (epoch_mark_[w] != epoch_) {
      epoch_mark_[w] = epoch_;
      hear_count_[w] = 1;
      hear_payload_[w] = payload;
    } else {
      ++hear_count_[w];
    }
  }

  const Graph* graph_;
  const ResidualGraph* residual_ = nullptr;
  ChannelModel model_;
  ChannelDirection direction_ = ChannelDirection::kPush;
  double loss_ = 0.0;
  std::uint64_t loss_seed_ = 0;
  std::uint64_t epoch_ = 0;
  // Push-side buffers: per-listener delivery state, epoch-stamped so
  // BeginRound stays O(1).
  std::vector<std::uint64_t> epoch_mark_;
  std::vector<std::uint32_t> hear_count_;
  std::vector<std::uint64_t> hear_payload_;
  // Pull-side buffers: the epoch-stamped transmitter set + payloads.
  // Maintained in push rounds too (O(1) per transmitter) so the
  // double-registration check and direction changes are always valid.
  std::vector<std::uint64_t> tx_mark_;
  std::vector<std::uint64_t> tx_payload_;
  // Packed transmitter bitset for the word-parallel pull scan: one 16-byte
  // (epoch, bits) pair per 64 nodes, lazily invalidated by epoch stamp so
  // BeginRound stays O(1). The word layout is shared with the scan kernels.
  using TxWord = chan_kernels::TxWord;
  std::vector<TxWord> tx_words_;
  // Loss-free pull-scan kernel for this machine, resolved once at startup.
  chan_kernels::ScanRowFn scan_fn_ = chan_kernels::ResolveScanRowFn();
};

}  // namespace emis
