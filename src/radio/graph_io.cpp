#include "radio/graph_io.hpp"

#include <charconv>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "radio/graph_generators.hpp"

namespace emis {

void WriteEdgeList(std::ostream& out, const Graph& graph) {
  out << graph.NumNodes() << ' ' << graph.NumEdges() << '\n';
  for (const Edge& e : graph.EdgeList()) out << e.u << ' ' << e.v << '\n';
}

Graph ReadEdgeList(std::istream& in) {
  // Token stream that skips '#' comments to end of line.
  auto next_token = [&in](std::string& tok) -> bool {
    while (in >> tok) {
      if (tok[0] == '#') {
        std::string rest;
        std::getline(in, rest);
        continue;
      }
      return true;
    }
    return false;
  };
  auto next_u64 = [&next_token](const char* what) {
    std::string tok;
    EMIS_REQUIRE(next_token(tok), std::string("edge list truncated: expected ") + what);
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
    EMIS_REQUIRE(ec == std::errc{} && ptr == tok.data() + tok.size(),
                 std::string("bad integer '") + tok + "' for " + what);
    return value;
  };

  const std::uint64_t n = next_u64("node count");
  EMIS_REQUIRE(n <= kInvalidNode, "node count too large");
  const std::uint64_t m = next_u64("edge count");
  GraphBuilder builder(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t u = next_u64("edge endpoint");
    const std::uint64_t v = next_u64("edge endpoint");
    EMIS_REQUIRE(u < n && v < n, "edge endpoint out of range");
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return std::move(builder).Build();
}

namespace {

struct SpecArgs {
  std::string family;
  std::map<std::string, std::string> kv;

  std::uint64_t GetU64(const std::string& key) const {
    const auto it = kv.find(key);
    EMIS_REQUIRE(it != kv.end(),
                 "graph spec '" + family + "' missing parameter '" + key + "'");
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(it->second.data(), it->second.data() + it->second.size(), value);
    EMIS_REQUIRE(ec == std::errc{} && ptr == it->second.data() + it->second.size(),
                 "bad integer for '" + key + "' in graph spec");
    return value;
  }

  double GetDouble(const std::string& key) const {
    const auto it = kv.find(key);
    EMIS_REQUIRE(it != kv.end(),
                 "graph spec '" + family + "' missing parameter '" + key + "'");
    try {
      std::size_t pos = 0;
      const double value = std::stod(it->second, &pos);
      EMIS_REQUIRE(pos == it->second.size(), "trailing junk in '" + key + "'");
      return value;
    } catch (const PreconditionError&) {
      throw;
    } catch (const std::exception&) {  // stod's invalid_argument/out_of_range
      throw PreconditionError("bad number for '" + key + "' in graph spec");
    }
  }
};

SpecArgs ParseSpec(std::string_view spec) {
  SpecArgs args;
  const auto colon = spec.find(':');
  args.family = std::string(spec.substr(0, colon));
  if (colon == std::string_view::npos) return args;
  std::string params(spec.substr(colon + 1));
  std::istringstream ss(params);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    EMIS_REQUIRE(eq != std::string::npos,
                 "graph spec parameter '" + item + "' is not key=value");
    args.kv.emplace(item.substr(0, eq), item.substr(eq + 1));
  }
  return args;
}

}  // namespace

Graph GraphFromSpec(std::string_view spec, Rng& rng) {
  const SpecArgs a = ParseSpec(spec);
  const auto n = [&a] { return static_cast<NodeId>(a.GetU64("n")); };
  if (a.family == "er") return gen::ErdosRenyi(n(), a.GetDouble("p"), rng);
  if (a.family == "gnm") return gen::GnM(n(), a.GetU64("m"), rng);
  if (a.family == "udg") return gen::RandomGeometric(n(), a.GetDouble("r"), rng);
  if (a.family == "grid") {
    return gen::Grid(static_cast<NodeId>(a.GetU64("rows")),
                     static_cast<NodeId>(a.GetU64("cols")));
  }
  if (a.family == "path") return gen::Path(n());
  if (a.family == "cycle") return gen::Cycle(n());
  if (a.family == "star") return gen::Star(n());
  if (a.family == "complete") return gen::Complete(n());
  if (a.family == "bipartite") {
    return gen::CompleteBipartite(static_cast<NodeId>(a.GetU64("left")),
                                  static_cast<NodeId>(a.GetU64("right")));
  }
  if (a.family == "tree") return gen::RandomTree(n(), rng);
  if (a.family == "ba") {
    return gen::BarabasiAlbert(n(), static_cast<std::uint32_t>(a.GetU64("m")), rng);
  }
  if (a.family == "regular") {
    return gen::NearRegular(n(), static_cast<std::uint32_t>(a.GetU64("d")), rng);
  }
  if (a.family == "matching") return gen::MatchingPlusIsolated(n());
  if (a.family == "cliques") {
    return gen::DisjointCliques(static_cast<NodeId>(a.GetU64("count")),
                                static_cast<NodeId>(a.GetU64("size")));
  }
  if (a.family == "caterpillar") {
    return gen::Caterpillar(static_cast<NodeId>(a.GetU64("spine")),
                            static_cast<NodeId>(a.GetU64("legs")));
  }
  if (a.family == "empty") return gen::Empty(n());
  throw PreconditionError("unknown graph family '" + a.family + "'; known: " +
                          GraphSpecHelp());
}

std::string GraphSpecHelp() {
  return "er:n,p  gnm:n,m  udg:n,r  grid:rows,cols  path:n  cycle:n  star:n  "
         "complete:n  bipartite:left,right  tree:n  ba:n,m  regular:n,d  "
         "matching:n  cliques:count,size  caterpillar:spine,legs  empty:n";
}

}  // namespace emis
