#include "radio/graph_io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <charconv>
#include <cstring>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <vector>

#include "radio/graph_generators.hpp"
#include "radio/hugepages.hpp"

namespace emis {

void WriteEdgeList(std::ostream& out, const Graph& graph) {
  out << graph.NumNodes() << ' ' << graph.NumEdges() << '\n';
  for (const Edge& e : graph.EdgeList()) out << e.u << ' ' << e.v << '\n';
}

namespace {

constexpr char kCsrMagic[8] = {'E', 'M', 'I', 'S', 'C', 'S', 'R', '1'};
constexpr std::uint32_t kCsrEndianTag = 0x01020304u;
constexpr std::uint32_t kCsrVersion = 1;
constexpr std::uint64_t kCsrHeaderBytes = 64;
constexpr std::uint64_t kCsrAlign = 64;

constexpr std::uint64_t AlignUp(std::uint64_t value) noexcept {
  return (value + kCsrAlign - 1) & ~(kCsrAlign - 1);
}

/// The fixed 64-byte header, decoded from / encoded to raw bytes with
/// memcpy so the on-disk layout never depends on struct padding.
struct CsrHeader {
  std::uint32_t endian_tag = kCsrEndianTag;
  std::uint32_t version = kCsrVersion;
  std::uint64_t num_nodes = 0;
  std::uint64_t adj_entries = 0;
  std::uint32_t max_degree = 0;
  std::uint64_t offsets_start = 0;
  std::uint64_t adjacency_start = 0;
  std::uint64_t file_size = 0;

  std::array<char, kCsrHeaderBytes> Encode() const {
    std::array<char, kCsrHeaderBytes> raw{};
    std::memcpy(raw.data(), kCsrMagic, sizeof(kCsrMagic));
    std::memcpy(raw.data() + 8, &endian_tag, 4);
    std::memcpy(raw.data() + 12, &version, 4);
    std::memcpy(raw.data() + 16, &num_nodes, 8);
    std::memcpy(raw.data() + 24, &adj_entries, 8);
    std::memcpy(raw.data() + 32, &max_degree, 4);
    // bytes [36, 40) reserved, zero
    std::memcpy(raw.data() + 40, &offsets_start, 8);
    std::memcpy(raw.data() + 48, &adjacency_start, 8);
    std::memcpy(raw.data() + 56, &file_size, 8);
    return raw;
  }

  static CsrHeader Decode(const char* raw) {
    EMIS_REQUIRE(std::memcmp(raw, kCsrMagic, sizeof(kCsrMagic)) == 0,
                 "not an emis-csr file (bad magic)");
    CsrHeader h;
    std::memcpy(&h.endian_tag, raw + 8, 4);
    EMIS_REQUIRE(h.endian_tag != __builtin_bswap32(kCsrEndianTag),
                 "emis-csr file written on a foreign-endian machine");
    EMIS_REQUIRE(h.endian_tag == kCsrEndianTag,
                 "emis-csr file has a corrupt endianness tag");
    std::memcpy(&h.version, raw + 12, 4);
    EMIS_REQUIRE(h.version == kCsrVersion, "unsupported emis-csr version");
    std::memcpy(&h.num_nodes, raw + 16, 8);
    std::memcpy(&h.adj_entries, raw + 24, 8);
    std::memcpy(&h.max_degree, raw + 32, 4);
    std::memcpy(&h.offsets_start, raw + 40, 8);
    std::memcpy(&h.adjacency_start, raw + 48, 8);
    std::memcpy(&h.file_size, raw + 56, 8);
    return h;
  }
};

void WriteZeroPad(std::ostream& out, std::uint64_t from, std::uint64_t to) {
  static constexpr char kZeros[kCsrAlign] = {};
  EMIS_ASSERT(to - from <= kCsrAlign, "section gap exceeds one alignment unit");
  out.write(kZeros, static_cast<std::streamsize>(to - from));
}

}  // namespace

void WriteBinaryCsr(std::ostream& out, const Graph& graph) {
  const std::span<const std::uint64_t> offsets = graph.RowOffsets();
  const std::span<const NodeId> adjacency = graph.Adjacency();
  CsrHeader header;
  header.num_nodes = graph.NumNodes();
  header.adj_entries = adjacency.size();
  header.max_degree = graph.MaxDegree();
  header.offsets_start = kCsrHeaderBytes;
  const std::uint64_t offsets_end =
      header.offsets_start + offsets.size_bytes();
  header.adjacency_start = AlignUp(offsets_end);
  header.file_size = header.adjacency_start + adjacency.size_bytes();

  const std::array<char, kCsrHeaderBytes> raw = header.Encode();
  out.write(raw.data(), raw.size());
  out.write(reinterpret_cast<const char*>(offsets.data()),
            static_cast<std::streamsize>(offsets.size_bytes()));
  WriteZeroPad(out, offsets_end, header.adjacency_start);
  out.write(reinterpret_cast<const char*>(adjacency.data()),
            static_cast<std::streamsize>(adjacency.size_bytes()));
  EMIS_REQUIRE(out.good(), "emis-csr write failed");
}

Graph MapBinaryCsr(const std::string& path) {
  struct FdGuard {
    int fd;
    ~FdGuard() {
      if (fd >= 0) ::close(fd);
    }
  };
  const FdGuard fd{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  EMIS_REQUIRE(fd.fd >= 0, "cannot open graph file: " + path);
  struct ::stat st = {};
  EMIS_REQUIRE(::fstat(fd.fd, &st) == 0, "cannot stat graph file: " + path);
  const auto size = static_cast<std::uint64_t>(st.st_size);
  EMIS_REQUIRE(size >= kCsrHeaderBytes,
               "emis-csr file truncated: shorter than its header");

  void* base =
      ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
  EMIS_REQUIRE(base != MAP_FAILED, "cannot mmap graph file: " + path);
  // Owner constructed immediately so every validation failure below
  // unmaps; the fd can close now (the mapping keeps its own reference).
  std::shared_ptr<const void> owner(
      base, [size](const void* p) { ::munmap(const_cast<void*>(p), size); });

  const CsrHeader header = CsrHeader::Decode(static_cast<const char*>(base));
  EMIS_REQUIRE(header.file_size == size,
               "emis-csr file truncated or padded: size does not match header");
  EMIS_REQUIRE(header.num_nodes < ~NodeId{0}, "emis-csr node count overflows NodeId");
  const std::uint64_t offsets_bytes = (header.num_nodes + 1) * sizeof(std::uint64_t);
  const std::uint64_t adjacency_bytes = header.adj_entries * sizeof(NodeId);
  EMIS_REQUIRE(header.offsets_start % kCsrAlign == 0 &&
                   header.adjacency_start % kCsrAlign == 0,
               "emis-csr sections must be 64-byte aligned");
  EMIS_REQUIRE(header.offsets_start >= kCsrHeaderBytes &&
                   header.offsets_start + offsets_bytes <= header.adjacency_start &&
                   header.adjacency_start + adjacency_bytes <= size,
               "emis-csr section bounds exceed the file");

  const char* bytes = static_cast<const char*>(base);
  const auto* offsets =
      reinterpret_cast<const std::uint64_t*>(bytes + header.offsets_start);
  const auto* adjacency =
      reinterpret_cast<const NodeId*>(bytes + header.adjacency_start);
  // Row-offset sanity at O(1) cost (ends only; interior pages stay cold so
  // the load never touches the full arrays).
  EMIS_REQUIRE(offsets[0] == 0 && offsets[header.num_nodes] == header.adj_entries,
               "emis-csr offset array does not span the adjacency section");
  AdviseHugePages(const_cast<char*>(bytes), size);
  return Graph::FromMappedCsr(std::move(owner), offsets,
                              static_cast<NodeId>(header.num_nodes), adjacency,
                              header.adj_entries, header.max_degree);
}

Graph ReadEdgeList(std::istream& in) {
  // Token stream that skips '#' comments to end of line.
  auto next_token = [&in](std::string& tok) -> bool {
    while (in >> tok) {
      if (tok[0] == '#') {
        std::string rest;
        std::getline(in, rest);
        continue;
      }
      return true;
    }
    return false;
  };
  auto next_u64 = [&next_token](const char* what) {
    std::string tok;
    EMIS_REQUIRE(next_token(tok), std::string("edge list truncated: expected ") + what);
    std::uint64_t value = 0;
    const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
    EMIS_REQUIRE(ec == std::errc{} && ptr == tok.data() + tok.size(),
                 std::string("bad integer '") + tok + "' for " + what);
    return value;
  };

  const std::uint64_t n = next_u64("node count");
  EMIS_REQUIRE(n <= kInvalidNode, "node count too large");
  const std::uint64_t m = next_u64("edge count");
  GraphBuilder builder(static_cast<NodeId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t u = next_u64("edge endpoint");
    const std::uint64_t v = next_u64("edge endpoint");
    EMIS_REQUIRE(u < n && v < n, "edge endpoint out of range");
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return std::move(builder).Build();
}

namespace {

struct SpecArgs {
  std::string family;
  std::map<std::string, std::string> kv;

  std::uint64_t GetU64(const std::string& key) const {
    const auto it = kv.find(key);
    EMIS_REQUIRE(it != kv.end(),
                 "graph spec '" + family + "' missing parameter '" + key + "'");
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(it->second.data(), it->second.data() + it->second.size(), value);
    EMIS_REQUIRE(ec == std::errc{} && ptr == it->second.data() + it->second.size(),
                 "bad integer for '" + key + "' in graph spec");
    return value;
  }

  double GetDouble(const std::string& key) const {
    const auto it = kv.find(key);
    EMIS_REQUIRE(it != kv.end(),
                 "graph spec '" + family + "' missing parameter '" + key + "'");
    try {
      std::size_t pos = 0;
      const double value = std::stod(it->second, &pos);
      EMIS_REQUIRE(pos == it->second.size(), "trailing junk in '" + key + "'");
      return value;
    } catch (const PreconditionError&) {
      throw;
    } catch (const std::exception&) {  // stod's invalid_argument/out_of_range
      throw PreconditionError("bad number for '" + key + "' in graph spec");
    }
  }
};

SpecArgs ParseSpec(std::string_view spec) {
  SpecArgs args;
  const auto colon = spec.find(':');
  args.family = std::string(spec.substr(0, colon));
  if (colon == std::string_view::npos) return args;
  std::string params(spec.substr(colon + 1));
  std::istringstream ss(params);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    EMIS_REQUIRE(eq != std::string::npos,
                 "graph spec parameter '" + item + "' is not key=value");
    args.kv.emplace(item.substr(0, eq), item.substr(eq + 1));
  }
  return args;
}

}  // namespace

Graph GraphFromSpec(std::string_view spec, Rng& rng) {
  const SpecArgs a = ParseSpec(spec);
  const auto n = [&a] { return static_cast<NodeId>(a.GetU64("n")); };
  if (a.family == "er") return gen::ErdosRenyi(n(), a.GetDouble("p"), rng);
  if (a.family == "gnm") return gen::GnM(n(), a.GetU64("m"), rng);
  if (a.family == "udg") return gen::RandomGeometric(n(), a.GetDouble("r"), rng);
  if (a.family == "grid") {
    return gen::Grid(static_cast<NodeId>(a.GetU64("rows")),
                     static_cast<NodeId>(a.GetU64("cols")));
  }
  if (a.family == "path") return gen::Path(n());
  if (a.family == "cycle") return gen::Cycle(n());
  if (a.family == "star") return gen::Star(n());
  if (a.family == "complete") return gen::Complete(n());
  if (a.family == "bipartite") {
    return gen::CompleteBipartite(static_cast<NodeId>(a.GetU64("left")),
                                  static_cast<NodeId>(a.GetU64("right")));
  }
  if (a.family == "tree") return gen::RandomTree(n(), rng);
  if (a.family == "ba") {
    return gen::BarabasiAlbert(n(), static_cast<std::uint32_t>(a.GetU64("m")), rng);
  }
  if (a.family == "regular") {
    return gen::NearRegular(n(), static_cast<std::uint32_t>(a.GetU64("d")), rng);
  }
  if (a.family == "matching") return gen::MatchingPlusIsolated(n());
  if (a.family == "cliques") {
    return gen::DisjointCliques(static_cast<NodeId>(a.GetU64("count")),
                                static_cast<NodeId>(a.GetU64("size")));
  }
  if (a.family == "caterpillar") {
    return gen::Caterpillar(static_cast<NodeId>(a.GetU64("spine")),
                            static_cast<NodeId>(a.GetU64("legs")));
  }
  if (a.family == "empty") return gen::Empty(n());
  throw PreconditionError("unknown graph family '" + a.family + "'; known: " +
                          GraphSpecHelp());
}

std::string GraphSpecHelp() {
  return "er:n,p  gnm:n,m  udg:n,r  grid:rows,cols  path:n  cycle:n  star:n  "
         "complete:n  bipartite:left,right  tree:n  ba:n,m  regular:n,d  "
         "matching:n  cliques:count,size  caterpillar:spine,legs  empty:n";
}

}  // namespace emis
