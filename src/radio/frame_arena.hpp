// Pooled allocation for coroutine frames.
//
// Every protocol instance is a C++20 coroutine whose frame would otherwise
// be an individual heap allocation — n root frames at Spawn plus one frame
// per sub-protocol invocation (backoffs, competitions) for the whole run,
// heap-scattered across node state that the scheduler hot loop walks every
// round. FrameArena replaces that with a per-scheduler slab allocator:
//
//   * slabs are monotonic — carved by pointer bump, never returned until the
//     arena dies, so frames allocated together sit contiguously;
//   * frees are pooled — a recycled frame goes onto a per-size free list
//     inside the arena and the next same-size frame reuses it, so the
//     sub-protocol churn of a long run reaches a small steady-state
//     footprint instead of growing monotonically;
//   * teardown is wholesale — destroying the arena releases the slabs; by
//     then every frame has been destroyed (the scheduler owns both).
//
// Routing: proc::Task's promise operator new calls frame_alloc::Allocate,
// which targets the arena a FrameArenaScope installed on the current thread
// (the scheduler installs its own around Spawn and every resume), falling
// back to the global heap when none is active (tasks driven outside a
// scheduler, e.g. unit tests). Each allocation carries a header naming its
// owning arena, so deallocation is routed correctly no matter which scope —
// if any — is active when the frame dies.
//
// Thread model: an arena belongs to one scheduler and one thread, exactly
// like the scheduler itself; the scope pointer is thread-local, so parallel
// sweeps (one scheduler per worker) never share an arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace emis {

class FrameArena {
 public:
  struct Stats {
    std::uint64_t reserved_bytes = 0;   ///< slab bytes held by the arena
    std::uint64_t used_bytes = 0;       ///< high-water bump allocation total
    std::uint64_t live_frames = 0;      ///< frames allocated and not recycled
    std::uint64_t frame_allocations = 0;///< total frames handed out
    std::uint64_t pool_reuses = 0;      ///< allocations served from free lists
  };

  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

  /// Returns `bytes` of max_align-aligned storage, reusing a recycled block
  /// of the same size class when one is pooled, else bump-allocating.
  void* Allocate(std::size_t bytes);

  /// Returns a block obtained from Allocate to the arena's pool. The storage
  /// stays reserved (reused by the next same-size Allocate) until teardown.
  void Recycle(void* p, std::size_t bytes) noexcept;

  const Stats& GetStats() const noexcept { return stats_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct SizeClass {
    std::size_t bytes;
    FreeNode* head;
  };

  static constexpr std::size_t kAlign = alignof(std::max_align_t);
  static constexpr std::size_t kFirstSlabBytes = 16 * 1024;
  static constexpr std::size_t kMaxSlabBytes = 1024 * 1024;

  std::vector<void*> slabs_;
  std::byte* bump_ = nullptr;
  std::size_t bump_remaining_ = 0;
  std::size_t next_slab_bytes_ = kFirstSlabBytes;
  // Coroutine frame sizes are one per coroutine *function*, so this stays a
  // handful of entries; linear scan beats hashing at that cardinality.
  std::vector<SizeClass> pools_;
  Stats stats_;
};

/// RAII installation of the arena that receives coroutine-frame allocations
/// on this thread. Scopes nest; each restores its predecessor.
class FrameArenaScope {
 public:
  explicit FrameArenaScope(FrameArena* arena) noexcept;
  FrameArenaScope(const FrameArenaScope&) = delete;
  FrameArenaScope& operator=(const FrameArenaScope&) = delete;
  ~FrameArenaScope();

  /// The innermost active arena on this thread, or null (heap fallback).
  static FrameArena* Current() noexcept;

 private:
  FrameArena* prev_;
};

namespace frame_alloc {

/// Allocates a coroutine frame from FrameArenaScope::Current() (or the heap
/// when no scope is active), tagging it with its origin.
void* Allocate(std::size_t size);

/// Frees a frame from Allocate, routing to the owning arena's pool or the
/// heap according to the tag — correct regardless of the active scope.
void Deallocate(void* p) noexcept;

}  // namespace frame_alloc

}  // namespace emis
