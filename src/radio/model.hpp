// The radio channel model: collision semantics and per-round node actions.
//
// Model recap (paper §1.1). Time is synchronous. In a round, a node is
// either asleep (free) or awake, and an awake node either transmits or
// listens — never both. A listener v receives a message from neighbor u iff
// u is the *only* transmitting neighbor of v. Otherwise:
//   * CD:      ≥2 transmitting neighbors → v hears a collision,
//              0 transmitting neighbors  → v hears silence.
//   * no-CD:   both cases are indistinguishable silence.
//   * beeping: ≥1 transmitting neighbor → v hears a (contentless) beep.
#pragma once

#include <cstdint>
#include <string_view>

#include "radio/types.hpp"

namespace emis {

enum class ChannelModel : std::uint8_t {
  kCd,       ///< radio with collision detection
  kNoCd,     ///< radio without collision detection
  kBeeping,  ///< beeping model (receiver-side OR of beeps)
};

constexpr std::string_view ToString(ChannelModel m) noexcept {
  switch (m) {
    case ChannelModel::kCd: return "CD";
    case ChannelModel::kNoCd: return "no-CD";
    case ChannelModel::kBeeping: return "beeping";
  }
  return "?";
}

/// How the channel resolves a round's receptions (see radio/channel.hpp).
/// Semantically invisible: every mode produces identical Receptions. The
/// choice only moves *where* the per-round work lands:
///   * push — each transmitter scans its neighbor row, cost O(Σ deg(tx));
///   * pull — each listener scans its neighbor row, cost O(Σ deg(listen));
///   * auto — per round, whichever side's degree sum is smaller.
enum class ChannelResolution : std::uint8_t {
  kAuto,  ///< per-round cost-model choice between push and pull
  kPush,  ///< always transmitter-side (the classic delivery loop)
  kPull,  ///< always listener-side (scan against the transmitter bitset)
};

constexpr std::string_view ToString(ChannelResolution r) noexcept {
  switch (r) {
    case ChannelResolution::kAuto: return "auto";
    case ChannelResolution::kPush: return "push";
    case ChannelResolution::kPull: return "pull";
  }
  return "?";
}

/// Parses "auto" / "push" / "pull"; anything else is kInvalid.
/// (std::optional would drag <optional> into every model.hpp includer.)
inline constexpr auto kInvalidChannelResolution =
    static_cast<ChannelResolution>(0xFF);
constexpr ChannelResolution ChannelResolutionFromString(
    std::string_view s) noexcept {
  if (s == "auto") return ChannelResolution::kAuto;
  if (s == "push") return ChannelResolution::kPush;
  if (s == "pull") return ChannelResolution::kPull;
  return kInvalidChannelResolution;
}

/// The direction actually used for one resolved round (kAuto never reaches
/// the channel; the scheduler's cost model lowers it to one of these).
enum class ChannelDirection : std::uint8_t { kPush, kPull };

/// What a listening node perceives in one round.
enum class ReceptionKind : std::uint8_t {
  kSilence,    ///< nothing heard (in no-CD this may hide a collision)
  kMessage,    ///< exactly one neighbor transmitted; payload available
  kCollision,  ///< CD only: more than one neighbor transmitted
  kBeep,       ///< beeping only: at least one neighbor beeped
};

struct Reception {
  ReceptionKind kind = ReceptionKind::kSilence;
  /// RADIO-CONGEST payload (≤ 64 bits ≥ O(log n)); valid iff kind == kMessage.
  std::uint64_t payload = 0;

  /// True if the channel was audibly busy. This is the predicate the paper's
  /// unary algorithms use: "heard 1 or collision" (CD) / "heard a beep".
  /// In no-CD it is true only for a successfully received message.
  bool Busy() const noexcept { return kind != ReceptionKind::kSilence; }

  friend bool operator==(const Reception&, const Reception&) = default;
};

constexpr std::string_view ToString(ReceptionKind k) noexcept {
  switch (k) {
    case ReceptionKind::kSilence: return "silence";
    case ReceptionKind::kMessage: return "message";
    case ReceptionKind::kCollision: return "collision";
    case ReceptionKind::kBeep: return "beep";
  }
  return "?";
}

/// Which backend drives protocol execution (see radio/scheduler.hpp).
/// Semantically invisible: both engines produce identical traces, energy
/// charges, metrics, and reports (pinned by tests/test_flat_engine.cpp).
/// The choice only moves *how* a node's program counter is represented:
///   * coroutine — one C++20 coroutine per node, frames pooled in the slab
///     arena; the reference implementation every protocol is written in;
///   * flat — packed per-node state-machine lanes stepped in place
///     (core/flat_mis.*), no frames and no symmetric transfer on the
///     resume hot path.
enum class ExecutionEngine : std::uint8_t {
  kCoroutine,  ///< reference backend: resume one coroutine per awake node
  kFlat,       ///< batched backend: advance packed state-machine lanes
};

constexpr std::string_view ToString(ExecutionEngine e) noexcept {
  switch (e) {
    case ExecutionEngine::kCoroutine: return "coroutine";
    case ExecutionEngine::kFlat: return "flat";
  }
  return "?";
}

/// Parses "coroutine" / "flat"; anything else is kInvalid.
inline constexpr auto kInvalidExecutionEngine =
    static_cast<ExecutionEngine>(0xFF);
constexpr ExecutionEngine ExecutionEngineFromString(std::string_view s) noexcept {
  if (s == "coroutine") return ExecutionEngine::kCoroutine;
  if (s == "flat") return ExecutionEngine::kFlat;
  return kInvalidExecutionEngine;
}

/// What a node chose to do with its current round(s).
enum class ActionKind : std::uint8_t {
  kTransmit,  ///< transmit a payload this round (awake)
  kListen,    ///< listen this round (awake)
  kSleep,     ///< sleep until a wake round (free)
};

constexpr std::string_view ToString(ActionKind k) noexcept {
  switch (k) {
    case ActionKind::kTransmit: return "transmit";
    case ActionKind::kListen: return "listen";
    case ActionKind::kSleep: return "sleep";
  }
  return "?";
}

}  // namespace emis
