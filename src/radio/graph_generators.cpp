#include "radio/graph_generators.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <vector>

namespace emis::gen {
namespace {

/// Skip-sampling for G(n, p): iterates over present pairs directly, giving
/// O(n + m) expected work instead of O(n^2) Bernoulli draws.
template <typename EmitEdge>
void SampleBernoulliPairs(NodeId n, double p, Rng& rng, EmitEdge emit) {
  if (n < 2 || p <= 0.0) return;
  if (p >= 1.0) {
    for (NodeId u = 0; u < n; ++u)
      for (NodeId v = u + 1; v < n; ++v) emit(u, v);
    return;
  }
  // Pairs in lexicographic order are positions 0..n(n-1)/2-1; jump between
  // successes with geometric gaps: gap = floor(log(U)/log(1-p)).
  const double log1mp = std::log1p(-p);
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t pos = 0;
  for (;;) {
    const double u = std::max(rng.UniformUnit(), 1e-300);  // avoid log(0)
    const double skip = std::floor(std::log(u) / log1mp);
    if (skip >= static_cast<double>(total - pos)) return;
    pos += static_cast<std::uint64_t>(skip);
    if (pos >= total) return;
    // Decode position -> (row u, col v). Row r owns (n-1-r) pairs.
    std::uint64_t remaining = pos;
    NodeId row = 0;
    // Binary search over rows for O(log n) decode.
    {
      NodeId lo = 0, hi = n - 1;
      // prefix(r) = pairs before row r = r*n - r - r(r-1)/2... use direct sum:
      auto prefix = [n](std::uint64_t r) {
        return r * n - r - r * (r - 1) / 2;
      };
      while (lo < hi) {
        const NodeId mid = lo + (hi - lo + 1) / 2;
        if (prefix(mid) <= remaining)
          lo = mid;
        else
          hi = mid - 1;
      }
      row = lo;
      remaining -= prefix(row);
    }
    const NodeId col = static_cast<NodeId>(row + 1 + remaining);
    emit(row, col);
    ++pos;
    if (pos >= total) return;
  }
}

}  // namespace

Graph ErdosRenyi(NodeId n, double p, Rng& rng) {
  EMIS_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  GraphBuilder builder(n);
  if (n >= 2 && p > 0.0) {
    // Expected m = p * C(n,2); reserve with ~3 standard deviations of slack
    // so the pending-edge list almost never reallocates.
    const double total = 0.5 * static_cast<double>(n) * (n - 1);
    const double expected = p * total;
    builder.Reserve(static_cast<std::uint64_t>(
        expected + 3.0 * std::sqrt(expected * (1.0 - p)) + 16.0));
  }
  SampleBernoulliPairs(n, p, rng, [&](NodeId u, NodeId v) { builder.AddEdge(u, v); });
  return std::move(builder).Build();
}

Graph GnM(NodeId n, std::uint64_t m, Rng& rng) {
  const std::uint64_t total = n < 2 ? 0 : static_cast<std::uint64_t>(n) * (n - 1) / 2;
  EMIS_REQUIRE(m <= total, "too many edges requested");
  GraphBuilder builder(n);
  builder.Reserve(m);
  std::uint64_t added = 0;
  while (added < m) {
    const NodeId u = static_cast<NodeId>(rng.UniformBelow(n));
    const NodeId v = static_cast<NodeId>(rng.UniformBelow(n));
    if (builder.AddEdgeIfAbsent(u, v)) ++added;
  }
  return std::move(builder).Build();
}

Graph RandomGeometric(NodeId n, double radius, Rng& rng) {
  EMIS_REQUIRE(radius >= 0.0, "radius must be non-negative");
  std::vector<double> x(n), y(n);
  for (NodeId v = 0; v < n; ++v) {
    x[v] = rng.UniformUnit();
    y[v] = rng.UniformUnit();
  }
  // Grid-bucket the points so expected work is O(n + m), not O(n^2). Cells
  // finer than ~sqrt(n) per side gain nothing, so clamp (also guards the
  // radius -> 0 blow-up).
  const double cell = std::max(radius, 1e-9);
  const auto max_side = static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n))) + 1;
  const auto side = static_cast<std::uint32_t>(
      std::clamp(std::floor(1.0 / cell), 1.0, static_cast<double>(max_side)));
  std::vector<std::vector<NodeId>> buckets(static_cast<std::size_t>(side) * side);
  auto bucket_of = [&](NodeId v) {
    auto bx = std::min<std::uint32_t>(side - 1, static_cast<std::uint32_t>(x[v] * side));
    auto by = std::min<std::uint32_t>(side - 1, static_cast<std::uint32_t>(y[v] * side));
    return static_cast<std::size_t>(bx) * side + by;
  };
  for (NodeId v = 0; v < n; ++v) buckets[bucket_of(v)].push_back(v);

  const double r2 = radius * radius;
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto bx = static_cast<std::int64_t>(std::min<std::uint32_t>(
        side - 1, static_cast<std::uint32_t>(x[v] * side)));
    const auto by = static_cast<std::int64_t>(std::min<std::uint32_t>(
        side - 1, static_cast<std::uint32_t>(y[v] * side)));
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const std::int64_t cx = bx + dx, cy = by + dy;
        if (cx < 0 || cy < 0 || cx >= static_cast<std::int64_t>(side) ||
            cy >= static_cast<std::int64_t>(side))
          continue;
        for (NodeId w : buckets[static_cast<std::size_t>(cx) * side + cy]) {
          if (w <= v) continue;
          const double ddx = x[v] - x[w], ddy = y[v] - y[w];
          if (ddx * ddx + ddy * ddy <= r2) builder.AddEdge(v, w);
        }
      }
    }
  }
  return std::move(builder).Build();
}

Graph Grid(NodeId rows, NodeId cols) {
  GraphBuilder builder(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(builder).Build();
}

Graph Path(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  return std::move(builder).Build();
}

Graph Cycle(NodeId n) {
  EMIS_REQUIRE(n == 0 || n >= 3, "cycle needs at least 3 nodes");
  GraphBuilder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder.AddEdge(v, v + 1);
  if (n >= 3) builder.AddEdge(n - 1, 0);
  return std::move(builder).Build();
}

Graph Star(NodeId n) {
  GraphBuilder builder(n);
  for (NodeId v = 1; v < n; ++v) builder.AddEdge(0, v);
  return std::move(builder).Build();
}

Graph Complete(NodeId n) {
  GraphBuilder builder(n);
  if (n >= 2) builder.Reserve(static_cast<std::uint64_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  return std::move(builder).Build();
}

Graph CompleteBipartite(NodeId left, NodeId right) {
  GraphBuilder builder(left + right);
  builder.Reserve(static_cast<std::uint64_t>(left) * right);
  for (NodeId u = 0; u < left; ++u)
    for (NodeId v = 0; v < right; ++v) builder.AddEdge(u, left + v);
  return std::move(builder).Build();
}

Graph RandomTree(NodeId n, Rng& rng) {
  if (n <= 1) return Empty(n);
  if (n == 2) return Path(2);
  // Prüfer decoding: a uniform sequence of n-2 labels decodes to a uniform
  // labeled tree.
  std::vector<NodeId> prufer(n - 2);
  for (auto& s : prufer) s = static_cast<NodeId>(rng.UniformBelow(n));
  std::vector<std::uint32_t> degree(n, 1);
  for (NodeId s : prufer) ++degree[s];

  GraphBuilder builder(n);
  builder.Reserve(n - 1);
  // Min-leaf extraction with a min-heap of current leaves.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> leaves;
  for (NodeId v = 0; v < n; ++v) {
    if (degree[v] == 1) leaves.push(v);
  }
  for (NodeId s : prufer) {
    const NodeId leaf = leaves.top();
    leaves.pop();
    builder.AddEdge(leaf, s);
    if (--degree[s] == 1) leaves.push(s);
  }
  EMIS_ASSERT(leaves.size() == 2, "Prüfer decode failed");
  const NodeId a = leaves.top();
  leaves.pop();
  builder.AddEdge(a, leaves.top());
  return std::move(builder).Build();
}

Graph NearRegular(NodeId n, std::uint32_t d, Rng& rng) {
  EMIS_REQUIRE(d < n, "degree must be below n");
  GraphBuilder builder(n);
  builder.Reserve(static_cast<std::uint64_t>(n) * d / 2);
  std::vector<std::uint32_t> degree(n, 0);
  // Repeated random pairing among nodes still short of degree d; bounded
  // retries keep this from spinning on the (rare) final odd remainder.
  const std::uint64_t target = static_cast<std::uint64_t>(n) * d / 2;
  std::uint64_t added = 0;
  std::uint64_t stall = 0;
  const std::uint64_t max_stall = 50ULL * n * (d + 1) + 1000;
  while (added < target && stall < max_stall) {
    const NodeId u = static_cast<NodeId>(rng.UniformBelow(n));
    const NodeId v = static_cast<NodeId>(rng.UniformBelow(n));
    if (u == v || degree[u] >= d || degree[v] >= d) {
      ++stall;
      continue;
    }
    if (builder.AddEdgeIfAbsent(u, v)) {
      ++degree[u];
      ++degree[v];
      ++added;
      stall = 0;
    } else {
      ++stall;
    }
  }
  return std::move(builder).Build();
}

Graph BarabasiAlbert(NodeId n, std::uint32_t m, Rng& rng) {
  EMIS_REQUIRE(m >= 1, "attachment count must be >= 1");
  EMIS_REQUIRE(n > m, "need more nodes than attachment edges");
  GraphBuilder builder(n);
  builder.Reserve(static_cast<std::uint64_t>(m) * (m + 1) / 2 +
                  static_cast<std::uint64_t>(n - m - 1) * m);
  // Endpoint multiset for preferential attachment: each edge contributes both
  // endpoints, so sampling uniformly from `endpoints` is degree-proportional.
  std::vector<NodeId> endpoints;
  // Seed clique on m+1 nodes.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId v = m + 1; v < n; ++v) {
    std::uint32_t attached = 0;
    std::uint64_t guard = 0;
    while (attached < m && guard < 10000) {
      const NodeId target = endpoints[rng.UniformBelow(endpoints.size())];
      if (builder.AddEdgeIfAbsent(v, target)) {
        endpoints.push_back(v);
        endpoints.push_back(target);
        ++attached;
      }
      ++guard;
    }
    EMIS_ASSERT(attached == m, "preferential attachment stalled");
  }
  return std::move(builder).Build();
}

Graph MatchingPlusIsolated(NodeId n) {
  GraphBuilder builder(n);
  const NodeId pairs = n / 4;
  for (NodeId i = 0; i < pairs; ++i) builder.AddEdge(2 * i, 2 * i + 1);
  return std::move(builder).Build();
}

Graph PerfectMatching(NodeId n) {
  EMIS_REQUIRE(n % 2 == 0, "perfect matching needs even n");
  GraphBuilder builder(n);
  for (NodeId i = 0; i < n / 2; ++i) builder.AddEdge(2 * i, 2 * i + 1);
  return std::move(builder).Build();
}

Graph DisjointCliques(NodeId count, NodeId size) {
  GraphBuilder builder(count * size);
  if (size >= 2) {
    builder.Reserve(static_cast<std::uint64_t>(count) * size * (size - 1) / 2);
  }
  for (NodeId c = 0; c < count; ++c) {
    const NodeId base = c * size;
    for (NodeId u = 0; u < size; ++u)
      for (NodeId v = u + 1; v < size; ++v) builder.AddEdge(base + u, base + v);
  }
  return std::move(builder).Build();
}

Graph Caterpillar(NodeId spine, NodeId legs) {
  GraphBuilder builder(spine * (1 + legs));
  for (NodeId s = 0; s + 1 < spine; ++s) builder.AddEdge(s, s + 1);
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) builder.AddEdge(s, spine + s * legs + l);
  }
  return std::move(builder).Build();
}

Graph Empty(NodeId n) { return GraphBuilder(n).Build(); }

}  // namespace emis::gen
