// Graph serialization and a tiny topology-spec language.
//
// Edge-list format (whitespace-separated, '#' comments):
//     n m
//     u v          (m lines, 0-based node ids)
//
// Spec strings name a generator plus parameters, e.g.
//     "er:n=1000,p=0.05"     "udg:n=500,r=0.08"    "grid:rows=8,cols=16"
//     "path:n=30"            "cycle:n=30"          "star:n=100"
//     "complete:n=20"        "bipartite:left=8,right=9"
//     "tree:n=50"            "ba:n=200,m=3"        "regular:n=100,d=6"
//     "matching:n=64"        "cliques:count=6,size=5"  "empty:n=10"
// Used by the CLI tool and by randomized tests.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "radio/graph.hpp"
#include "radio/rng.hpp"

namespace emis {

/// Writes the edge-list representation.
void WriteEdgeList(std::ostream& out, const Graph& graph);

/// Parses an edge list; throws PreconditionError on malformed input
/// (bad counts, out-of-range ids, self-loops, duplicates).
Graph ReadEdgeList(std::istream& in);

/// Builds a graph from a spec string (see header comment). Randomized
/// families consume from `rng`; deterministic ones ignore it. Throws
/// PreconditionError for unknown families or missing/extra parameters.
Graph GraphFromSpec(std::string_view spec, Rng& rng);

/// The list of spec family names, for help text.
std::string GraphSpecHelp();

}  // namespace emis
