// Graph serialization and a tiny topology-spec language.
//
// Edge-list format (whitespace-separated, '#' comments):
//     n m
//     u v          (m lines, 0-based node ids)
//
// Spec strings name a generator plus parameters, e.g.
//     "er:n=1000,p=0.05"     "udg:n=500,r=0.08"    "grid:rows=8,cols=16"
//     "path:n=30"            "cycle:n=30"          "star:n=100"
//     "complete:n=20"        "bipartite:left=8,right=9"
//     "tree:n=50"            "ba:n=200,m=3"        "regular:n=100,d=6"
//     "matching:n=64"        "cliques:count=6,size=5"  "empty:n=10"
// Used by the CLI tool and by randomized tests.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "radio/graph.hpp"
#include "radio/rng.hpp"

namespace emis {

/// Writes the edge-list representation.
void WriteEdgeList(std::ostream& out, const Graph& graph);

/// Parses an edge list; throws PreconditionError on malformed input
/// (bad counts, out-of-range ids, self-loops, duplicates).
Graph ReadEdgeList(std::istream& in);

// --- emis-csr/1: versioned binary CSR container ----------------------------
//
// The text edge list is quadratic to rebuild (parse + sort + CSR assembly);
// the binary container stores the CSR arrays directly so a packed graph
// loads zero-copy via mmap. Layout (all integers in the writer's native
// byte order, declared by the endianness tag):
//
//   byte  0  magic "EMISCSR1" (8 bytes)
//   byte  8  endianness tag u32 = 0x01020304 (foreign-order files rejected)
//   byte 12  format version u32 = 1
//   byte 16  num_nodes u64
//   byte 24  adj_entries u64 (directed: each undirected edge appears twice)
//   byte 32  max_degree u32
//   byte 36  reserved u32 = 0
//   byte 40  offsets section start u64 (bytes from file start, 64-aligned)
//   byte 48  adjacency section start u64 (bytes, 64-aligned)
//   byte 56  total file size u64 (truncation check)
//   ----     offsets section: (num_nodes + 1) x u64
//   ----     adjacency section: adj_entries x u32, rows sorted ascending
//
// Both sections start 64-byte aligned (cache-line- and SIMD-friendly for
// the word-scan kernels; mmap bases are page-aligned so in-memory alignment
// follows from in-file alignment). Gaps are zero-filled.

/// Serializes `graph` as emis-csr/1. The stream must be binary-clean
/// (opened with std::ios::binary when it is a file).
void WriteBinaryCsr(std::ostream& out, const Graph& graph);

/// Memory-maps an emis-csr/1 file read-only and wraps it as a Graph without
/// copying: only the header is validated (magic, endianness, version,
/// section bounds, file size), so the load faults in O(1) pages — adjacency
/// pages fault lazily on first scan. The mapping is advised towards huge
/// pages and stays alive as long as any copy of the returned Graph does.
/// Throws PreconditionError on malformed, foreign-endian, or truncated
/// files.
Graph MapBinaryCsr(const std::string& path);

/// Builds a graph from a spec string (see header comment). Randomized
/// families consume from `rng`; deterministic ones ignore it. Throws
/// PreconditionError for unknown families or missing/extra parameters.
Graph GraphFromSpec(std::string_view spec, Rng& rng);

/// The list of spec family names, for help text.
std::string GraphSpecHelp();

}  // namespace emis
