// Coroutine node processes: the API in which protocols are written.
//
// A protocol is a C++20 coroutine returning proc::Task<T>. It interacts with
// the radio exclusively through a NodeApi value:
//
//   proc::Task<void> MyProtocol(NodeApi api) {
//     co_await api.Transmit(1);                  // one round, awake
//     Reception r = co_await api.Listen();       // one round, awake
//     co_await api.SleepFor(10);                 // ten rounds, free
//     co_await api.SleepUntil(phase_end);        // absolute-round sync point
//   }
//
// Sub-protocols compose by awaiting Tasks (`bool heard = co_await
// RecEBackoff(api, k, delta);`), which is how the paper's backoff procedures
// plug into Algorithms 2 and 3.
//
// Core Guidelines notes: coroutines here are named functions (CP.51), and
// every pointer captured in a coroutine frame (NodeContext, output slots)
// outlives the scheduler run that drives the coroutine (CP.53).
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "obs/phase_timeline.hpp"
#include "radio/energy.hpp"
#include "radio/frame_arena.hpp"
#include "radio/model.hpp"
#include "radio/rng.hpp"
#include "radio/size_budget.hpp"
#include "radio/types.hpp"

namespace emis {

class Scheduler;

/// Per-node mutable state is split into a hot half — everything the
/// scheduler reads or writes when deciding what a node does next — and a
/// cold half touched only when the node actually acts (RNG draws, reception
/// delivery, coroutine resumption, annotation). The Scheduler owns one
/// parallel array of each, so its per-round loops stream 16 B/node instead
/// of the former 128 B monolith; the sleeping majority's RNG/reception/
/// handle state never enters the cache (DESIGN.md §12.2, size_budget.hpp).
/// Protocols, awaitables, and the flat engine reach both halves through the
/// two-pointer NodeContext view below.
struct HotNodeContext {
  /// `flags` packs the pending ActionKind (low two bits, the enum's values)
  /// with the three status bits that used to be separate bools.
  static constexpr std::uint8_t kPendingMask = 0x03;
  /// Set when the node's root program finishes.
  static constexpr std::uint8_t kDoneBit = 0x04;
  /// One-shot request raised by NodeApi::Retire(); the scheduler consumes
  /// it after the current resume slice (see MarkRetired).
  static constexpr std::uint8_t kRetireRequestBit = 0x08;
  /// Set once the scheduler has retired the node: it must never transmit or
  /// listen again (sleeping until a sync round and finishing are fine).
  static constexpr std::uint8_t kRetiredBit = 0x10;

  /// Widest clock value the narrowed `now` field can hold. The scheduler
  /// asserts each round that the global clock fits; executing 2^32 rounds
  /// is infeasible (runs here use hundreds), so the bound costs one
  /// predictable compare per round, not per resume.
  static constexpr Round kNowMax = 0xffffffffu;

  /// Argument of the pending action: the wake round while Pending() is
  /// kSleep, the transmit payload while kTransmit, dead while kListen. The
  /// two uses never coexist — filing an action overwrites the slot — which
  /// is what lets one 8-byte field replace the old wake_round/out_payload
  /// pair.
  std::uint64_t arg = 0;

  /// The round in which this node's *next* submitted action will execute.
  /// Maintained by the scheduler; protocols read it through NodeApi::Now().
  /// Stored narrow (see kNowMax): together with the packed flags byte this
  /// is what brings the hot context to 16 bytes — four per cache line,
  /// none straddling a line boundary.
  std::uint32_t now = 0;

  std::uint8_t flags = static_cast<std::uint8_t>(ActionKind::kSleep);

  /// Action submitted by the protocol for resolution.
  ActionKind Pending() const noexcept {
    return static_cast<ActionKind>(flags & kPendingMask);
  }
  /// First round to act again; meaningful only while Pending() == kSleep.
  Round WakeRound() const noexcept { return arg; }
  /// Transmit payload; meaningful only while Pending() == kTransmit.
  std::uint64_t Payload() const noexcept { return arg; }
  bool Done() const noexcept { return (flags & kDoneBit) != 0; }
  bool RetireRequested() const noexcept {
    return (flags & kRetireRequestBit) != 0;
  }
  bool Retired() const noexcept { return (flags & kRetiredBit) != 0; }

  void FileTransmit(std::uint64_t payload) noexcept {
    SetPending(ActionKind::kTransmit);
    arg = payload;
  }
  void FileListen() noexcept { SetPending(ActionKind::kListen); }
  void FileSleep(Round wake) noexcept {
    SetPending(ActionKind::kSleep);
    arg = wake;
  }
  void MarkDone() noexcept { flags |= kDoneBit; }
  void RequestRetire() noexcept { flags |= kRetireRequestBit; }
  /// Retiring consumes the one-shot retire request (Scheduler::Retire).
  void MarkRetired() noexcept {
    flags = static_cast<std::uint8_t>((flags | kRetiredBit) & ~kRetireRequestBit);
  }
  void SetPending(ActionKind kind) noexcept {
    flags = static_cast<std::uint8_t>((flags & ~kPendingMask) |
                                      static_cast<std::uint8_t>(kind));
  }
};

static_assert(sizeof(HotNodeContext) <= kHotContextBytes,
              "hot context outgrew its streamed-line budget (size_budget.hpp)");
static_assert(alignof(HotNodeContext) == alignof(Round),
              "hot context alignment must not pad the parallel array");

/// The cold half: state a resume touches only when the node actually does
/// something beyond being rescheduled. Owned by the Scheduler in an array
/// parallel to the hot one.
struct ColdNodeContext {
  Rng rng{0};

  /// Result of the last kListen action; set by the scheduler before resume.
  Reception last_reception;

  /// Innermost suspended coroutine to resume when the action resolves
  /// (coroutine engine only; flat lanes keep their resume point in the
  /// lane's pc field instead).
  std::coroutine_handle<> resume_point;

  /// This node's energy counters (owned by the scheduler's meter). Protocols
  /// read them to implement the paper's deterministic energy thresholds.
  const NodeEnergy* energy = nullptr;

  /// Optional run-level phase timeline (owned by the caller, installed via
  /// SchedulerConfig); null when observability is off. Protocols annotate
  /// through NodeApi::Phase / SubPhase.
  obs::PhaseTimeline* timeline = nullptr;

  NodeId id = kInvalidNode;
};

static_assert(sizeof(ColdNodeContext) <= kColdContextBytes,
              "cold context outgrew its budget (size_budget.hpp)");

/// The two-pointer view over one node's hot and cold halves. Cheap value
/// type: awaitables, NodeApi, and FlatCtx hold it by value (coroutine
/// frames store the 16-byte view, not the state); the Scheduler
/// materializes it on demand from its parallel arrays. Copies refer to the
/// same node.
struct NodeContext {
  HotNodeContext* hot = nullptr;
  ColdNodeContext* cold = nullptr;

  /// Marks the root program finished — the flat engine's terminal step.
  void MarkDone() const noexcept { hot->MarkDone(); }
};

static_assert(sizeof(NodeContext) <= kContextViewBytes,
              "context view outgrew two pointers (size_budget.hpp)");

namespace proc {

/// Lazily-started coroutine task with symmetric-transfer continuation.
/// `Task<T>` is move-only and owns its coroutine frame.
template <typename T>
class [[nodiscard]] Task;

namespace detail {

struct PromiseBase {
  /// Coroutine frames allocate through the pooled frame arena the driving
  /// scheduler installs via FrameArenaScope (heap fallback outside one), so
  /// per-node protocol state is slab-contiguous instead of heap-scattered.
  /// The frame is tagged with its origin, so deallocation routes correctly
  /// even when a different (or no) scope is active at destruction.
  static void* operator new(std::size_t size) { return frame_alloc::Allocate(size); }
  static void operator delete(void* p) noexcept { frame_alloc::Deallocate(p); }

  std::coroutine_handle<> continuation;  // resumed when this task finishes
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object();
  void return_void() noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool Valid() const noexcept { return handle_ != nullptr; }
  bool Done() const noexcept { return !handle_ || handle_.done(); }

  /// Raw handle; used by the scheduler to start the root task.
  Handle RawHandle() const noexcept { return handle_; }

  /// Rethrows the stored exception, if any. Called by the scheduler after a
  /// root task completes.
  void RethrowIfFailed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  /// Awaiting a Task starts it (symmetric transfer) and resumes the awaiter
  /// when it finishes, yielding its return value.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle child;
      bool await_ready() const noexcept { return !child || child.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        child.promise().continuation = parent;
        return child;  // start the child immediately
      }
      T await_resume() {
        if (child.promise().exception) std::rethrow_exception(child.promise().exception);
        if constexpr (!std::is_void_v<T>) {
          return std::move(*child.promise().value);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_ = nullptr;
};

namespace detail {
template <typename T>
Task<T> Promise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}
inline Task<void> Promise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}
}  // namespace detail

}  // namespace proc

namespace detail_await {

/// Common awaitable behaviour: record the suspended coroutine so the
/// scheduler can resume the whole stack at the right round.
struct ActionAwaitBase {
  NodeContext ctx;
  void Park(std::coroutine_handle<> h) const noexcept {
    ctx.cold->resume_point = h;
  }
};

struct TransmitAwait : ActionAwaitBase {
  std::uint64_t payload;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const noexcept {
    ctx.hot->FileTransmit(payload);
    Park(h);
  }
  void await_resume() const noexcept {}
};

struct ListenAwait : ActionAwaitBase {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const noexcept {
    ctx.hot->FileListen();
    Park(h);
  }
  Reception await_resume() const noexcept { return ctx.cold->last_reception; }
};

struct SleepAwait : ActionAwaitBase {
  Round wake;
  /// Sleeping zero rounds is a no-op that does not suspend.
  bool await_ready() const noexcept { return wake <= ctx.hot->now; }
  void await_suspend(std::coroutine_handle<> h) const noexcept {
    ctx.hot->FileSleep(wake);
    Park(h);
  }
  void await_resume() const noexcept {}
};

}  // namespace detail_await

/// The per-node handle protocols use to act on the radio. Cheap value type;
/// copies refer to the same node.
class NodeApi {
 public:
  NodeApi() = default;
  explicit NodeApi(NodeContext ctx) noexcept : ctx_(ctx) {}

  NodeId Id() const noexcept { return ctx_.cold->id; }

  /// The round in which the next awaited action will execute. Protocols use
  /// this with SleepUntil for the paper's absolute-round synchronization.
  Round Now() const noexcept { return ctx_.hot->now; }

  /// This node's private random stream.
  Rng& Rand() const noexcept { return ctx_.cold->rng; }

  /// Awake rounds this node has paid so far (reads the scheduler's meter).
  std::uint64_t EnergySpent() const noexcept {
    return ctx_.cold->energy != nullptr ? ctx_.cold->energy->Awake() : 0;
  }

  /// Annotates a protocol phase boundary (e.g. Phase("luby-phase", k)) at
  /// this node's current round. All participants of a synchronized phase may
  /// call it; repeats of the open label are merged by the timeline. No-op
  /// when no timeline is installed.
  void Phase(std::string_view base,
             std::uint64_t index = obs::PhaseTimeline::kNoIndex) const {
    if (ctx_.cold->timeline != nullptr) {
      ctx_.cold->timeline->Annotate(base, index, ctx_.hot->now);
    }
  }

  /// Annotates a sub-phase (a window inside the current phase, e.g. a
  /// "decay" backoff) without closing the enclosing phase span.
  void SubPhase(std::string_view base,
                std::uint64_t index = obs::PhaseTimeline::kNoIndex) const {
    if (ctx_.cold->timeline != nullptr) {
      ctx_.cold->timeline->AnnotateSub(base, index, ctx_.hot->now);
    }
  }

  /// Spend one awake round transmitting `payload`. The paper's algorithms
  /// are unary and always send 1; baselines send IDs.
  detail_await::TransmitAwait Transmit(std::uint64_t payload = 1) const noexcept {
    return {{ctx_}, payload};
  }

  /// Spend one awake round listening; yields what was heard.
  detail_await::ListenAwait Listen() const noexcept { return {{ctx_}}; }

  /// Sleep for `rounds` rounds (free). SleepFor(0) is a no-op.
  detail_await::SleepAwait SleepFor(Round rounds) const noexcept {
    return {{ctx_}, ctx_.hot->now + rounds};
  }

  /// Sleep until the absolute round `round` (free). No-op if already due.
  detail_await::SleepAwait SleepUntil(Round round) const noexcept {
    return {{ctx_}, round};
  }

  /// Reports a terminal decision (joined the MIS, killed by a neighbor, or
  /// otherwise terminated): this node will never transmit or listen again —
  /// it may still sleep and then finish. After the current resume slice the
  /// scheduler drops the node from its residual graph, shrinking every
  /// neighbor's live scan row (see Scheduler::Retire). Idempotent, and
  /// implied anyway by the protocol coroutine finishing; root MIS protocols
  /// call it explicitly so retirement does not depend on wrapper structure.
  void Retire() const noexcept { ctx_.hot->RequestRetire(); }

 private:
  NodeContext ctx_;
};

/// Signature of a protocol entry point: given its NodeApi, produce the root
/// task for one node. Captured state must outlive the scheduler run.
using ProtocolFactory = std::function<proc::Task<void>(NodeApi)>;

}  // namespace emis
