#include "radio/graph.hpp"

#include <algorithm>

#include "core/contracts.hpp"

namespace emis {

Graph Graph::FromEdges(NodeId num_nodes, std::span<const Edge> edges) {
  GraphBuilder builder(num_nodes);
  for (const Edge& e : edges) builder.AddEdge(e.u, e.v);
  return std::move(builder).Build();
}

Graph Graph::FromMappedCsr(std::shared_ptr<const void> owner,
                           const std::uint64_t* offsets, NodeId num_nodes,
                           const NodeId* adjacency, std::uint64_t adj_entries,
                           std::uint32_t max_degree) {
  EMIS_EXPECTS(owner != nullptr, "mapped CSR needs a storage owner");
  EMIS_EXPECTS(offsets != nullptr && (adjacency != nullptr || adj_entries == 0),
               "mapped CSR arrays must not be null");
  Graph g;
  g.mapping_ = std::move(owner);
  g.mapped_offsets_ = offsets;
  g.mapped_adjacency_ = adjacency;
  g.mapped_nodes_ = num_nodes;
  g.mapped_entries_ = adj_entries;
  g.max_degree_ = max_degree;
  return g;
}

ResidualGraph::ResidualGraph(const Graph& graph)
    : rows_(graph.NumNodes()),
      active_((static_cast<std::size_t>(graph.NumNodes()) + 63) / 64, 0),
      live_edges_(graph.NumEdges()),
      active_count_(graph.NumNodes()) {
  adjacency_.reserve(2 * graph.NumEdges());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const auto nbrs = graph.Neighbors(v);
    rows_[v].begin = adjacency_.size();
    rows_[v].scan_len = static_cast<std::uint32_t>(nbrs.size());
    rows_[v].live_degree = rows_[v].scan_len;
    adjacency_.insert(adjacency_.end(), nbrs.begin(), nbrs.end());
    active_[v >> 6] |= 1ULL << (v & 63);
  }
}

void ResidualGraph::Retire(NodeId v) {
  EMIS_REQUIRE(v < NumNodes(), "node out of range");
  EMIS_REQUIRE(Active(v), "node retired twice");
  active_[v >> 6] &= ~(1ULL << (v & 63));
  --active_count_;
  live_edges_ -= rows_[v].live_degree;
  const std::uint64_t begin = rows_[v].begin;
  const std::uint32_t len = rows_[v].scan_len;
  for (std::uint32_t i = 0; i < len; ++i) {
    // The row walk itself is sequential, but the per-neighbor counter
    // update is a dependent random access (this loop runs ~2|E| times over
    // a full run); pulling the neighbor's interleaved RowMeta a few
    // entries ahead overlaps the misses.
    if (i + 8 < len) {
      __builtin_prefetch(&rows_[adjacency_[begin + i + 8]], /*rw=*/1,
                         /*locality=*/1);
    }
    const NodeId w = adjacency_[begin + i];
    if (!Active(w)) continue;  // dead prefix entry, already accounted
    RowMeta& row = rows_[w];
    --row.live_degree;
    // Dead fraction crossed ½ (v is in w's prefix and just died, so the row
    // strictly shrinks): stable-compact survivors to the prefix.
    if (row.live_degree * 2ULL <= row.scan_len) CompactRow(w);
  }
  // v's own row leaves the scan set entirely.
  edges_reclaimed_ += len;
  rows_[v].scan_len = 0;
  rows_[v].live_degree = 0;
}

void ResidualGraph::CompactRow(NodeId w) {
  RowMeta& row = rows_[w];
  const std::uint64_t begin = row.begin;
  const std::uint32_t len = row.scan_len;
  std::uint32_t out = 0;
  for (std::uint32_t i = 0; i < len; ++i) {
    const NodeId u = adjacency_[begin + i];
    if (Active(u)) adjacency_[begin + out++] = u;
  }
  EMIS_ASSERT(out == row.live_degree, "live-degree counter out of sync with row");
  edges_reclaimed_ += len - out;
  row.scan_len = out;
  ++compactions_;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  EMIS_REQUIRE(u < NumNodes() && v < NumNodes(), "node out of range");
  if (u == v) return false;
  // Search the shorter adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::EdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (NodeId u = 0; u < NumNodes(); ++u) {
    for (NodeId v : Neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  return edges;  // Lexicographic by construction: u ascending, lists sorted.
}

InducedSubgraph Graph::Induced(std::span<const NodeId> nodes) const {
  std::vector<NodeId> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end());
  EMIS_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
               "duplicate node in induced-subgraph selection");
  for (NodeId v : sorted) EMIS_REQUIRE(v < NumNodes(), "node out of range");

  // original id -> subgraph id (or invalid).
  std::vector<NodeId> to_sub(NumNodes(), kInvalidNode);
  for (NodeId i = 0; i < sorted.size(); ++i) to_sub[sorted[i]] = i;

  GraphBuilder builder(static_cast<NodeId>(sorted.size()));
  for (NodeId i = 0; i < sorted.size(); ++i) {
    for (NodeId w : Neighbors(sorted[i])) {
      const NodeId j = to_sub[w];
      if (j != kInvalidNode && i < j) builder.AddEdge(i, j);
    }
  }
  return {std::move(builder).Build(), std::move(sorted)};
}

std::uint32_t Graph::ConnectedComponents(std::vector<std::uint32_t>& component) const {
  component.assign(NumNodes(), ~std::uint32_t{0});
  std::uint32_t count = 0;
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < NumNodes(); ++root) {
    if (component[root] != ~std::uint32_t{0}) continue;
    component[root] = count;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (NodeId w : Neighbors(v)) {
        if (component[w] == ~std::uint32_t{0}) {
          component[w] = count;
          stack.push_back(w);
        }
      }
    }
    ++count;
  }
  return count;
}

Graph Graph::Square() const {
  // Two-hop enumeration produces the same pair many times (once per common
  // neighbor); append them all and let Build() sort+unique once instead of
  // paying a hash probe per candidate.
  GraphBuilder builder(NumNodes());
  builder.Reserve(NumEdges() * 2);
  for (NodeId v = 0; v < NumNodes(); ++v) {
    for (NodeId w : Neighbors(v)) {
      if (v < w) builder.AddEdgeDedup(v, w);
      // Two-hop edges: v - w - x.
      for (NodeId x : Neighbors(w)) {
        if (v < x) builder.AddEdgeDedup(v, x);
      }
    }
  }
  return std::move(builder).Build();
}

std::vector<std::uint32_t> Graph::BfsDistances(NodeId source) const {
  EMIS_REQUIRE(source < NumNodes(), "node out of range");
  std::vector<std::uint32_t> dist(NumNodes(), kUnreachable);
  std::vector<NodeId> frontier = {source};
  dist[source] = 0;
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (NodeId w : Neighbors(v)) {
        if (dist[w] == kUnreachable) {
          dist[w] = level;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

bool Graph::IsConnected() const {
  if (NumNodes() <= 1) return true;
  std::vector<std::uint32_t> component;
  return ConnectedComponents(component) == 1;
}

GraphBuilder& GraphBuilder::AddEdge(NodeId u, NodeId v) {
  EMIS_REQUIRE(u < num_nodes_ && v < num_nodes_, "node out of range");
  EMIS_REQUIRE(u != v, "self-loops are not allowed");
  if (u > v) std::swap(u, v);
  // Keep the membership set current only once AddEdgeIfAbsent materialized
  // it; the pure-AddEdge bulk path never hashes.
  if (tracking_) seen_.insert((static_cast<std::uint64_t>(u) << 32) | v);
  edges_.push_back({u, v});
  return *this;
}

void GraphBuilder::MaterializeSeen() {
  tracking_ = true;
  seen_.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    seen_.insert((static_cast<std::uint64_t>(e.u) << 32) | e.v);
  }
}

bool GraphBuilder::AddEdgeIfAbsent(NodeId u, NodeId v) {
  EMIS_REQUIRE(u < num_nodes_ && v < num_nodes_, "node out of range");
  if (u == v) return false;
  if (u > v) std::swap(u, v);
  if (!tracking_) MaterializeSeen();
  const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
  if (!seen_.insert(key).second) return false;
  edges_.push_back({u, v});
  return true;
}

void GraphBuilder::AddEdgeDedup(NodeId u, NodeId v) {
  EMIS_REQUIRE(u < num_nodes_ && v < num_nodes_, "node out of range");
  EMIS_REQUIRE(u != v, "self-loops are not allowed");
  if (u > v) std::swap(u, v);
  dedup_at_build_ = true;
  edges_.push_back({u, v});
}

Graph GraphBuilder::Build() && {
  // Sort; with AddEdgeDedup in play duplicates are collapsed here, otherwise
  // they are a caller error.
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  if (dedup_at_build_) {
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  } else {
    EMIS_REQUIRE(std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
                 "duplicate edge");
  }

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const Edge& e : edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) g.offsets_[i] += g.offsets_[i - 1];

  g.adjacency_.resize(edges_.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges_) {
    g.adjacency_[cursor[e.u]++] = e.v;
    g.adjacency_[cursor[e.v]++] = e.u;
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end);
    g.max_degree_ = std::max<std::uint32_t>(
        g.max_degree_, static_cast<std::uint32_t>(end - begin));
  }
  return g;
}

}  // namespace emis
