#include "radio/scheduler.hpp"

#include "core/contracts.hpp"
#include "obs/scoped_timer.hpp"

namespace emis {

Scheduler::Scheduler(const Graph& graph, SchedulerConfig config, std::uint64_t seed)
    : graph_(&graph),
      config_(config),
      channel_(graph, config.model),
      energy_(graph.NumNodes()) {
  if (config.link_loss > 0.0) {
    channel_.SetLoss(config.link_loss, seed ^ 0x10ad10ad10ad10adULL);
  }
  if (config_.timeline != nullptr) {
    config_.timeline->BindEnergy(&energy_);
  }
  if (config_.metrics != nullptr) {
    execute_timer_ = &config_.metrics->GetTimer("sched.execute_round");
    resume_timer_ = &config_.metrics->GetTimer("sched.resume");
    wake_timer_ = &config_.metrics->GetTimer("sched.wake_heap");
    rounds_executed_ = &config_.metrics->GetCounter("sched.rounds_executed");
    rounds_skipped_ = &config_.metrics->GetCounter("sched.rounds_skipped");
    wake_events_ = &config_.metrics->GetCounter("sched.wake_events");
    push_rounds_ = &config_.metrics->GetCounter("chan.push_rounds");
    pull_rounds_ = &config_.metrics->GetCounter("chan.pull_rounds");
    edges_scanned_ = &config_.metrics->GetCounter("chan.edges_scanned");
    arena_reserved_ = &config_.metrics->GetGauge("arena.bytes_reserved");
    arena_used_ = &config_.metrics->GetGauge("arena.bytes_used");
  }
  const Rng root(seed);
  contexts_.resize(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    contexts_[v].id = v;
    contexts_[v].rng = root.Split(v);
    contexts_[v].energy = &energy_.Of(v);
    contexts_[v].timeline = config_.timeline;
  }
}

void Scheduler::Spawn(const ProtocolFactory& factory) {
  EMIS_EXPECTS(!spawned_, "Spawn must be called exactly once");
  spawned_ = true;
  // Root frames (and any coroutines the factory itself creates) come from
  // this scheduler's pooled arena; see radio/frame_arena.hpp.
  const FrameArenaScope frames(&arena_);
  tasks_.reserve(graph_->NumNodes());
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    tasks_.push_back(factory(NodeApi(&contexts_[v])));
    EMIS_EXPECTS(tasks_.back().Valid(), "protocol factory returned an empty task");
  }
  // Start every protocol: run it to its first suspension (or completion) so
  // it submits its action for round 0.
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    contexts_[v].now = 0;
    contexts_[v].resume_point = tasks_[v].RawHandle();
    ResumeAndFile(v, actors_);
  }
}

void Scheduler::ResumeAndFile(NodeId v, std::vector<NodeId>& actors) {
  NodeContext& ctx = contexts_[v];
  // Sub-protocol frames spawned while the coroutine runs allocate from (and
  // completed ones recycle into) this scheduler's arena.
  const FrameArenaScope frames(&arena_);
  ctx.resume_point.resume();
  if (tasks_[v].Done()) {
    tasks_[v].RethrowIfFailed();
    ctx.done = true;
    ++finished_;
    return;
  }
  switch (ctx.pending) {
    case ActionKind::kTransmit:
    case ActionKind::kListen:
      actors.push_back(v);
      break;
    case ActionKind::kSleep:
      EMIS_INVARIANT(ctx.wake_round > ctx.now, "sleep must advance time");
      wake_heap_.push({ctx.wake_round, v});
      break;
    default:
      EMIS_UNREACHABLE("unhandled pending action kind");
  }
}

ChannelDirection Scheduler::ChooseDirection() {
  std::uint64_t tx_edges = 0;
  std::uint64_t listen_edges = 0;
  for (NodeId v : actors_) {
    const NodeContext& ctx = contexts_[v];
    EMIS_INVARIANT(ctx.now == now_, "actor scheduled for wrong round");
    if (ctx.pending == ActionKind::kTransmit) {
      tx_edges += graph_->Degree(v);
    } else {
      listen_edges += graph_->Degree(v);
    }
  }
  ChannelDirection dir = ChannelDirection::kPush;
  switch (config_.resolution) {
    case ChannelResolution::kPush:
      break;
    case ChannelResolution::kPull:
      dir = ChannelDirection::kPull;
      break;
    case ChannelResolution::kAuto:
      // Resolve on the cheaper side; ties go to push, whose per-edge work
      // (stamped delivery) is slightly lighter than the pull-side scan.
      if (listen_edges < tx_edges) dir = ChannelDirection::kPull;
      break;
  }
  if (edges_scanned_ != nullptr) {
    (dir == ChannelDirection::kPush ? push_rounds_ : pull_rounds_)->Inc();
    edges_scanned_->Inc(dir == ChannelDirection::kPush ? tx_edges : listen_edges);
  }
  return dir;
}

void Scheduler::ExecuteRound() {
  {
    const obs::ScopedTimer timing(execute_timer_);
    channel_.BeginRound(ChooseDirection());
    // Phase 1: register all transmissions.
    for (NodeId v : actors_) {
      NodeContext& ctx = contexts_[v];
      if (ctx.pending == ActionKind::kTransmit) {
        channel_.AddTransmitter(v, ctx.out_payload);
        energy_.ChargeTransmit(v);
        if (config_.trace != nullptr) {
          config_.trace->OnEvent({now_, v, ActionKind::kTransmit, ctx.out_payload, {}});
        }
      }
    }
    // Phase 2: resolve receptions.
    for (NodeId v : actors_) {
      NodeContext& ctx = contexts_[v];
      if (ctx.pending == ActionKind::kListen) {
        ctx.last_reception = channel_.ResolveListener(v);
        energy_.ChargeListen(v);
        if (config_.trace != nullptr) {
          config_.trace->OnEvent({now_, v, ActionKind::kListen, 0, ctx.last_reception});
        }
      }
    }
  }
  node_rounds_ += actors_.size();
  last_awake_round_ = now_;
  any_awake_round_ = true;
  if (rounds_executed_ != nullptr) rounds_executed_->Inc();

  // Phase 3: resume actors so they submit their next action (for now_ + 1).
  const obs::ScopedTimer timing(resume_timer_);
  next_actors_.clear();
  for (NodeId v : actors_) {
    contexts_[v].now = now_ + 1;
    ResumeAndFile(v, next_actors_);
  }
  actors_.swap(next_actors_);
}

RunStats Scheduler::RunUntil(Round limit) {
  EMIS_EXPECTS(spawned_, "call Spawn before running");
  limit = std::min(limit, config_.max_rounds);

  while (!AllFinished()) {
    // If nobody acts this round, jump to the next wake event.
    if (actors_.empty()) {
      if (wake_heap_.empty()) {
        // Every remaining protocol sleeps forever; nothing further happens.
        // (Cannot occur with SleepFor/SleepUntil, which are finite, but a
        // protocol that never finishes after its last action lands here.)
        break;
      }
      // Clamp the jump at `limit`: the virtual clock must not overshoot the
      // run bound, and rounds_skipped_ must count only rounds actually
      // skipped within this run (the remainder is counted if a later
      // RunUntil resumes past it).
      const Round jump_to =
          std::min(limit, std::max(now_, wake_heap_.top().round));
      if (rounds_skipped_ != nullptr) rounds_skipped_->Inc(jump_to - now_);
      now_ = jump_to;
    }
    if (now_ >= limit) break;

    // Wake sleepers due now; they may join this round's actors.
    if (!wake_heap_.empty() && wake_heap_.top().round <= now_) {
      const obs::ScopedTimer timing(wake_timer_);
      do {
        const NodeId v = wake_heap_.top().node;
        wake_heap_.pop();
        EMIS_INVARIANT(wake_heap_.empty() || wake_heap_.top().round >= now_,
                     "missed a wake event");
        contexts_[v].now = now_;
        if (wake_events_ != nullptr) wake_events_->Inc();
        ResumeAndFile(v, actors_);
      } while (!wake_heap_.empty() && wake_heap_.top().round <= now_);
    }
    if (actors_.empty()) continue;  // woken nodes all went back to sleep

    ExecuteRound();
    ++now_;
  }

  if (arena_reserved_ != nullptr) {
    const FrameArena::Stats& arena = arena_.GetStats();
    arena_reserved_->Set(static_cast<double>(arena.reserved_bytes));
    arena_used_->Set(static_cast<double>(arena.used_bytes));
  }

  RunStats stats;
  stats.rounds_used = any_awake_round_ ? last_awake_round_ + 1 : 0;
  stats.node_rounds = node_rounds_;
  stats.nodes_finished = finished_;
  stats.hit_round_limit = !AllFinished() && now_ >= config_.max_rounds;
  EMIS_ENSURES(stats.nodes_finished <= graph_->NumNodes(),
               "more protocols finished than nodes exist");
  EMIS_ENSURES(stats.rounds_used <= config_.max_rounds,
               "round complexity exceeds the configured hard stop");
  // The run is over (not merely paused at `limit`): close the trailing phase
  // span so per-phase deltas cover the whole run.
  if (config_.timeline != nullptr && (AllFinished() || stats.hit_round_limit)) {
    config_.timeline->Close(stats.rounds_used);
  }
  return stats;
}

}  // namespace emis
