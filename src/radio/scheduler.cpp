#include "radio/scheduler.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/contracts.hpp"
#include "obs/scoped_timer.hpp"
#include "radio/hugepages.hpp"
#include "verify/parallel.hpp"

namespace emis {

unsigned DefaultShards() noexcept {
  static const unsigned shards = [] {
    // Read once under the static's init guard; the process never setenv()s,
    // so the getenv cannot race a writer.
    const char* env = std::getenv("EMIS_SHARDS");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr || *env == '\0') return 1u;
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || value == 0 || value > 256) return 1u;
    return static_cast<unsigned>(value);
  }();
  return shards;
}

Scheduler::Scheduler(const Graph& graph, SchedulerConfig config, std::uint64_t seed)
    : graph_(&graph),
      config_(config),
      channel_(graph, config.model),
      energy_(graph.NumNodes()) {
  if (config.link_loss > 0.0) {
    channel_.SetLoss(config.link_loss, seed ^ 0x10ad10ad10ad10adULL);
  }
  if (config_.compaction) {
    residual_.emplace(graph);
    channel_.AttachResidual(&*residual_);
  }
  if (config_.ledger != nullptr) {
    EMIS_EXPECTS(config_.ledger->NumNodes() == graph.NumNodes(),
                 "energy ledger sized for a different graph");
  }
  if (config_.timeline != nullptr) {
    config_.timeline->BindEnergy(&energy_);
    // The timeline drives the ledger's (phase, sub) context and the
    // telemetry's phase-boundary events. RunMis (or whichever driver owns
    // the timeline) clears these bindings after the run.
    if (config_.ledger != nullptr) {
      config_.timeline->BindLedger(config_.ledger);
    }
    if (config_.telemetry != nullptr) {
      obs::StreamSink* sink = config_.telemetry;
      config_.timeline->SetSpanHook([sink](const obs::PhaseSpan& span) {
        obs::JsonValue event = obs::JsonValue::MakeObject();
        event.Set("event", obs::JsonValue("phase"));
        event.Set("label", obs::JsonValue(span.label));
        event.Set("level", obs::JsonValue(static_cast<std::uint64_t>(span.level)));
        event.Set("begin_round", obs::JsonValue(span.begin_round));
        event.Set("end_round", obs::JsonValue(span.end_round));
        event.Set("rounds", obs::JsonValue(span.Rounds()));
        // The span's transmit/listen delta = this phase's attribution
        // increment, streamed so a live consumer can grow the attribution
        // table without waiting for the final report.
        event.Set("transmit_rounds", obs::JsonValue(span.transmit_rounds));
        event.Set("listen_rounds", obs::JsonValue(span.listen_rounds));
        if (span.has_residual) {
          event.Set("residual_edges_begin", obs::JsonValue(span.residual_edges_begin));
          event.Set("residual_edges_end", obs::JsonValue(span.residual_edges_end));
        }
        sink->Emit(event);
      });
    }
  }
  if (config_.metrics != nullptr) {
    execute_timer_ = &config_.metrics->GetTimer("sched.execute_round");
    resume_timer_ = &config_.metrics->GetTimer("sched.resume");
    wake_timer_ = &config_.metrics->GetTimer("sched.wake_heap");
    rounds_executed_ = &config_.metrics->GetCounter("sched.rounds_executed");
    rounds_skipped_ = &config_.metrics->GetCounter("sched.rounds_skipped");
    wake_events_ = &config_.metrics->GetCounter("sched.wake_events");
    push_rounds_ = &config_.metrics->GetCounter("chan.push_rounds");
    pull_rounds_ = &config_.metrics->GetCounter("chan.pull_rounds");
    edges_scanned_ = &config_.metrics->GetCounter("chan.edges_scanned");
    compactions_metric_ = &config_.metrics->GetCounter("graph.compactions");
    edges_reclaimed_metric_ = &config_.metrics->GetCounter("graph.edges_reclaimed");
    live_edges_metric_ = &config_.metrics->GetGauge("chan.live_edges");
    arena_reserved_ = &config_.metrics->GetGauge("arena.bytes_reserved");
    arena_used_ = &config_.metrics->GetGauge("arena.bytes_used");
    merge_words_metric_ = &config_.metrics->GetGauge("chan.merge_words");
    barrier_waits_metric_ = &config_.metrics->GetGauge("parallel.barrier_waits");
    mem_hot_metric_ = &config_.metrics->GetGauge("mem.context_hot_bytes");
    mem_cold_metric_ = &config_.metrics->GetGauge("mem.context_cold_bytes");
    mem_lane_metric_ = &config_.metrics->GetGauge("mem.lane_bytes");
  }
  barrier_waits_base_ = par::BarrierWaits();
  const Rng root(seed);
  // The hot array is default-initialized (round 0, sleeping, no flags);
  // only the cold half needs per-node identity wired up.
  ReserveHuge(ctx_hot_, graph.NumNodes());
  ReserveHuge(ctx_cold_, graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    ctx_cold_[v].id = v;
    ctx_cold_[v].rng = root.Split(v);
    ctx_cold_[v].energy = &energy_.Of(v);
    ctx_cold_[v].timeline = config_.timeline;
  }
}

void Scheduler::Spawn(const ProtocolFactory& factory) {
  EMIS_EXPECTS(!spawned_, "Spawn must be called exactly once");
  EMIS_EXPECTS(config_.engine == ExecutionEngine::kCoroutine,
               "Spawn drives the coroutine engine; use SpawnFlat");
  spawned_ = true;
  // Root frames (and any coroutines the factory itself creates) come from
  // this scheduler's pooled arena; see radio/frame_arena.hpp.
  const FrameArenaScope frames(&arena_);
  tasks_.reserve(graph_->NumNodes());
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    tasks_.push_back(factory(NodeApi(View(v))));
    EMIS_EXPECTS(tasks_.back().Valid(), "protocol factory returned an empty task");
  }
  // Start every protocol: run it to its first suspension (or completion) so
  // it submits its action for round 0.
  for (NodeId v = 0; v < graph_->NumNodes(); ++v) {
    ctx_hot_[v].now = 0;
    ctx_cold_[v].resume_point = tasks_[v].RawHandle();
    ResumeAndFile(v, actors_);
  }
}

void Scheduler::SpawnFlat(std::unique_ptr<FlatProtocol> protocol) {
  EMIS_EXPECTS(!spawned_, "Spawn must be called exactly once");
  EMIS_EXPECTS(config_.engine == ExecutionEngine::kFlat,
               "SpawnFlat drives the flat engine; use Spawn");
  EMIS_EXPECTS(protocol != nullptr, "flat protocol must not be null");
  spawned_ = true;
  flat_ = std::move(protocol);
  flat_lanes_ = flat_->Lanes();
  // Sharding engages here (flat engine only): never more shards than nodes,
  // so every shard owns at least one row at bench sizes and degenerate tiny
  // graphs collapse to fewer shards instead of empty dispatches.
  if (config_.shards > 1 && graph_->NumNodes() > 0) {
    shards_ = std::min<unsigned>(config_.shards, graph_->NumNodes());
  }
  if (Sharded()) BuildShardCut();
  // Step every machine to its first action (round 0), in node order —
  // exactly where Spawn runs each coroutine to its first suspension. The
  // steps are independent per node (each touches only its own lane), so the
  // sharded path runs them on the pool and files serially afterwards.
  const NodeId n = graph_->NumNodes();
  if (ParallelStepEligible() && n >= kParallelMinNodes) {
    par::ParallelFor(shards_, shards_, [this](std::uint64_t s, unsigned) {
      for (NodeId v = shard_begin_[s]; v < shard_begin_[s + 1]; ++v) {
        ctx_hot_[v].now = 0;
        flat_->Step(v, View(v));
      }
    });
    for (NodeId v = 0; v < n; ++v) FileAction(v, actors_, &shard_actors_);
  } else {
    for (NodeId v = 0; v < n; ++v) {
      ctx_hot_[v].now = 0;
      ResumeAndFile(v, actors_, Sharded() ? &shard_actors_ : nullptr);
    }
  }
}

void Scheduler::BuildShardCut() {
  const std::span<const std::uint64_t> offsets = graph_->RowOffsets();
  const NodeId n = graph_->NumNodes();
  const std::uint64_t total = offsets[n];  // directed CSR entries
  shard_begin_.assign(shards_ + 1, 0);
  shard_begin_[shards_] = n;
  for (unsigned s = 1; s < shards_; ++s) {
    NodeId boundary;
    if (total == 0) {
      // Edgeless graph: fall back to a node-uniform cut.
      boundary = static_cast<NodeId>(
          static_cast<std::uint64_t>(n) * s / shards_);
    } else {
      // Largest node whose edge prefix is still within s/shards of the
      // total — contiguous row ranges with balanced directed-edge volume,
      // which is what the channel passes actually iterate.
      const std::uint64_t target =
          static_cast<std::uint64_t>(static_cast<unsigned __int128>(total) * s / shards_);
      const auto it = std::upper_bound(offsets.begin(), offsets.end(), target);
      boundary = static_cast<NodeId>(std::distance(offsets.begin(), it) - 1);
    }
    // Monotone boundaries; skewed graphs may leave later shards empty.
    shard_begin_[s] = std::max(boundary, shard_begin_[s - 1]);
  }
  tx_buffers_.resize(shards_);
  for (unsigned s = 0; s < shards_; ++s) {
    channel_.InitShardBuffer(tx_buffers_[s], shard_begin_[s], shard_begin_[s + 1]);
  }
  shard_actors_.assign(shards_, {});
  next_shard_actors_.assign(shards_, {});
  shard_tx_count_.assign(shards_, 0);
  shard_listen_count_.assign(shards_, 0);
}

unsigned Scheduler::ShardOf(NodeId v) const noexcept {
  const auto it =
      std::upper_bound(shard_begin_.begin() + 1, shard_begin_.end(), v);
  return static_cast<unsigned>(std::distance(shard_begin_.begin() + 1, it));
}

void Scheduler::Retire(NodeId v) {
  EMIS_EXPECTS(v < graph_->NumNodes(), "node out of range");
  HotNodeContext& hot = ctx_hot_[v];
  if (hot.Retired()) return;  // idempotent: finishing also implies retirement
  hot.MarkRetired();  // sets retired, clears any pending retire request
  ++retired_;
  if (residual_.has_value()) residual_->Retire(v);
}

void Scheduler::ResumeAndFile(NodeId v, std::vector<NodeId>& actors,
                              std::vector<std::vector<NodeId>>* by_shard) {
  if (flat_ != nullptr) {
    flat_->Step(v, View(v));
  } else {
    // Sub-protocol frames spawned while the coroutine runs allocate from
    // (and completed ones recycle into) this scheduler's arena.
    const FrameArenaScope frames(&arena_);
    ctx_cold_[v].resume_point.resume();
    if (tasks_[v].Done()) {
      tasks_[v].RethrowIfFailed();
      ctx_hot_[v].MarkDone();
    }
  }
  FileAction(v, actors, by_shard);
}

void Scheduler::FileAction(NodeId v, std::vector<NodeId>& actors,
                           std::vector<std::vector<NodeId>>* by_shard) {
  HotNodeContext& hot = ctx_hot_[v];
  if (hot.Done()) {
    ++finished_;
    // A finished program never acts again: drop the node from every
    // neighbor's live scan row.
    Retire(v);
    return;
  }
  if (hot.RetireRequested()) Retire(v);
  switch (hot.Pending()) {
    case ActionKind::kTransmit:
    case ActionKind::kListen:
      EMIS_INVARIANT(!hot.Retired(), "retired node submitted a radio action");
      actors.push_back(v);
      if (by_shard != nullptr) (*by_shard)[ShardOf(v)].push_back(v);
      break;
    case ActionKind::kSleep:
      EMIS_INVARIANT(hot.WakeRound() > hot.now, "sleep must advance time");
      PushWake(hot.WakeRound(), v);
      break;
    default:
      EMIS_UNREACHABLE("unhandled pending action kind");
  }
}

void Scheduler::PrefetchResume(const std::vector<NodeId>& nodes,
                               std::size_t i) noexcept {
  if (i + 16 < nodes.size()) {
    const NodeId ahead = nodes[i + 16];
    // A HotNodeContext is 16 B — one cache line covers it and three of
    // its neighbors, so a single prefetch pulls everything the filing
    // path reads. Resume order is wake order, not node order, so the
    // hardware stride detector cannot cover any of these streams.
    __builtin_prefetch(&ctx_hot_[ahead], /*rw=*/1, /*locality=*/1);
    if (flat_lanes_.base != nullptr) {
      // The flat engine's second dependent load is the node's lane. The
      // cold half is deliberately NOT prefetched here: only RNG-drawing
      // resumes reach it, and pulling it for every node measurably costs
      // more in bandwidth than the avoided misses return (~6% at
      // n = 2^20, degree 256).
      __builtin_prefetch(static_cast<const char*>(flat_lanes_.base) +
                             flat_lanes_.stride * ahead,
                         1, 1);
    } else {
      // Coroutine resumes always reach the cold half (resume_point, rng).
      __builtin_prefetch(&ctx_cold_[ahead], 1, 1);
    }
  }
  if (i + 4 < nodes.size() && flat_ == nullptr) {
    // The cold line was prefetched twelve resumes ago, so this dereference
    // is cheap by now; the frame header is what resume() loads first.
    __builtin_prefetch(ctx_cold_[nodes[i + 4]].resume_point.address(), 1, 1);
  }
}

void Scheduler::PushWake(Round round, NodeId node) {
  // Wheel entries satisfy now < round < now + W: the bucket for `round` was
  // last drained at or before the current round, so it next drains exactly
  // at `round` (the clock visits every pending wake round). The bound must
  // be strict — a distance-W entry maps to the *current* round's slot, and
  // if it lands there while now's bucket drains (all woken nodes back to
  // sleep), NextWakeRound would re-find the slot at d = 0 and re-drain it
  // this round, waking the node W rounds early. Distance >= W goes to the
  // overflow list, whose minimum NextWakeRound also consults.
  if (round - now_ < kWheelSize) {
    wake_wheel_[round & (kWheelSize - 1)].push_back(node);
    ++wheel_count_;
  } else {
    wake_overflow_.push_back({round, node});
    overflow_min_ = std::min(overflow_min_, round);
  }
}

Round Scheduler::NextWakeRound() const noexcept {
  if (wheel_count_ > 0) {
    // Walk forward from `now`; total walk length across a run is bounded by
    // the rounds the clock advances, so this is O(1) amortized per jump.
    // Slot aliasing is benign: at distance d the slot can only hold round
    // now + d (a round now + d + W entry would have been pushed after round
    // now + d, which has not happened yet).
    for (Round d = 0; d < kWheelSize; ++d) {
      const Round round = now_ + d;
      if (!wake_wheel_[round & (kWheelSize - 1)].empty()) {
        return std::min(round, overflow_min_);
      }
    }
  }
  return overflow_min_;
}

void Scheduler::MigrateOverflow() {
  std::size_t kept = 0;
  Round kept_min = kNoWake;
  for (const WakeEntry& entry : wake_overflow_) {
    // Same strict horizon as PushWake: a distance-W entry would alias the
    // current slot, so it stays in overflow until the clock gets closer.
    if (entry.round - now_ < kWheelSize) {
      wake_wheel_[entry.round & (kWheelSize - 1)].push_back(entry.node);
      ++wheel_count_;
    } else {
      kept_min = std::min(kept_min, entry.round);
      wake_overflow_[kept++] = entry;
    }
  }
  wake_overflow_.resize(kept);
  overflow_min_ = kept_min;
}

ChannelDirection Scheduler::ChooseDirection() {
  // Live degrees when the residual overlay is on: as the residual shrinks,
  // the cost model keeps tracking the work a direction will actually do,
  // so auto direction choices improve over the run.
  std::uint64_t tx_edges = 0;
  std::uint64_t listen_edges = 0;
  for (NodeId v : actors_) {
    const HotNodeContext& hot = ctx_hot_[v];
    EMIS_INVARIANT(hot.now == now_, "actor scheduled for wrong round");
    const std::uint64_t cost =
        residual_.has_value() ? residual_->LiveDegree(v) : graph_->Degree(v);
    if (hot.Pending() == ActionKind::kTransmit) {
      tx_edges += cost;
    } else {
      listen_edges += cost;
    }
  }
  round_tx_edges_ = tx_edges;
  round_listen_edges_ = listen_edges;
  const ChannelDirection dir =
      ResolveDirection(config_.resolution, tx_edges, listen_edges);
  if (edges_scanned_ != nullptr) {
    (dir == ChannelDirection::kPush ? push_rounds_ : pull_rounds_)->Inc();
    edges_scanned_->Inc(dir == ChannelDirection::kPush ? tx_edges : listen_edges);
  }
  return dir;
}

ChannelDirection Scheduler::PhysicalDirection(
    ChannelDirection model_dir) const noexcept {
  // Coroutine engine: physical == model, so the accounted cost is the paid
  // cost. Lossy channels scan scalar either way (per-link draws), so the
  // unweighted model is already right there too.
  if (flat_ == nullptr || config_.link_loss > 0.0) return model_dir;
  // Loss-free flat rounds: the pull scan runs the word-parallel kernel at
  // roughly a quarter of push's per-edge cost (measured ~3.2 ns/edge vs
  // ~14 ns/edge at bench sizes), so push only wins when the transmit side
  // is ~4x smaller in edge volume.
  return round_tx_edges_ * 4 < round_listen_edges_ ? ChannelDirection::kPush
                                                   : ChannelDirection::kPull;
}

void Scheduler::ExecuteRound() {
  {
    const obs::ScopedTimer timing(execute_timer_);
    channel_.BeginRound(PhysicalDirection(ChooseDirection()));
    // Phase 1: register all transmissions. Touches only the hot array — a
    // transmit's payload rides in the hot argument slot.
    for (std::size_t i = 0; i < actors_.size(); ++i) {
      if (i + 8 < actors_.size()) {
        __builtin_prefetch(&ctx_hot_[actors_[i + 8]], 0, 1);
      }
      const NodeId v = actors_[i];
      const HotNodeContext& hot = ctx_hot_[v];
      if (hot.Pending() == ActionKind::kTransmit) {
        channel_.AddTransmitter(v, hot.Payload());
        energy_.ChargeTransmit(v);
        if (config_.ledger != nullptr) config_.ledger->ChargeTransmit(v);
        if (config_.trace != nullptr) {
          config_.trace->OnEvent({now_, v, ActionKind::kTransmit, hot.Payload(), {}});
        }
      }
    }
    // Phase 2: resolve receptions. Reads the hot flags, writes the cold
    // reception slot — prefetch both ahead.
    for (std::size_t i = 0; i < actors_.size(); ++i) {
      if (i + 8 < actors_.size()) {
        const NodeId ahead = actors_[i + 8];
        __builtin_prefetch(&ctx_hot_[ahead], 0, 1);
        __builtin_prefetch(&ctx_cold_[ahead].last_reception, 1, 1);
      }
      const NodeId v = actors_[i];
      if (ctx_hot_[v].Pending() == ActionKind::kListen) {
        ctx_cold_[v].last_reception = channel_.ResolveListener(v);
        energy_.ChargeListen(v);
        if (config_.ledger != nullptr) config_.ledger->ChargeListen(v);
        if (config_.trace != nullptr) {
          config_.trace->OnEvent(
              {now_, v, ActionKind::kListen, 0, ctx_cold_[v].last_reception});
        }
      }
    }
  }
  node_rounds_ += actors_.size();
  last_awake_round_ = now_;
  any_awake_round_ = true;
  if (rounds_executed_ != nullptr) rounds_executed_->Inc();
  if (config_.telemetry != nullptr &&
      now_ % std::max<Round>(config_.telemetry->HeartbeatEvery(), 1) == 0) {
    EmitHeartbeat();
  }

  // Phase 3: resume actors so they submit their next action (for now_ + 1).
  const obs::ScopedTimer timing(resume_timer_);
  next_actors_.clear();
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    PrefetchResume(actors_, i);
    const NodeId v = actors_[i];
    ctx_hot_[v].now = static_cast<std::uint32_t>(now_ + 1);
    ResumeAndFile(v, next_actors_);
  }
  actors_.swap(next_actors_);
}

void Scheduler::ShardTransmitPass(unsigned s) {
  Channel::TxShardBuffer& buffer = tx_buffers_[s];
  const std::vector<NodeId>& list = shard_actors_[s];
  std::uint64_t transmits = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i + 8 < list.size()) {
      __builtin_prefetch(&ctx_hot_[list[i + 8]], 0, 1);
    }
    const NodeId v = list[i];
    const HotNodeContext& hot = ctx_hot_[v];
    if (hot.Pending() != ActionKind::kTransmit) continue;
    channel_.StampTransmitter(buffer, v, hot.Payload());
    energy_.ChargeTransmitLocal(v);
    if (config_.ledger != nullptr) config_.ledger->ChargeTransmit(v);
    ++transmits;
  }
  shard_tx_count_[s] = transmits;
}

void Scheduler::ShardListenPass(unsigned s) {
  const std::vector<NodeId>& list = shard_actors_[s];
  std::uint64_t listens = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i + 8 < list.size()) {
      const NodeId ahead = list[i + 8];
      __builtin_prefetch(&ctx_hot_[ahead], 0, 1);
      __builtin_prefetch(&ctx_cold_[ahead].last_reception, 1, 1);
    }
    const NodeId v = list[i];
    if (ctx_hot_[v].Pending() != ActionKind::kListen) continue;
    ctx_cold_[v].last_reception = channel_.ResolveListener(v);
    energy_.ChargeListenLocal(v);
    if (config_.ledger != nullptr) config_.ledger->ChargeListen(v);
    ++listens;
  }
  shard_listen_count_[s] = listens;
}

void Scheduler::EmitRoundTrace() {
  // Deferred serial trace pass in global actor order: all transmit events,
  // then all listens — exactly the event order the unsharded two-phase loop
  // emits, so trace goldens are shard-count-invariant.
  for (const NodeId v : actors_) {
    const HotNodeContext& hot = ctx_hot_[v];
    if (hot.Pending() == ActionKind::kTransmit) {
      config_.trace->OnEvent({now_, v, ActionKind::kTransmit, hot.Payload(), {}});
    }
  }
  for (const NodeId v : actors_) {
    if (ctx_hot_[v].Pending() == ActionKind::kListen) {
      config_.trace->OnEvent(
          {now_, v, ActionKind::kListen, 0, ctx_cold_[v].last_reception});
    }
  }
}

void Scheduler::ExecuteRoundSharded() {
  {
    const obs::ScopedTimer timing(execute_timer_);
    // ChooseDirection still runs for its side effects — actor-round
    // validation and the chan.* cost-model metrics — but sharded rounds
    // always *resolve* pull-side: stamping is shard-local and the listener
    // scan reads the merged bitset without touching other nodes' state.
    // Unobservable, per the Channel reception contract (the same argument
    // that lets PhysicalDirection substitute directions; lossy channels
    // keep per-link draws keyed by (listener, round, neighbor), which are
    // direction-free by construction).
    ChooseDirection();
    channel_.BeginRound(ChannelDirection::kPull);
    // Pre-intern the ledger's (phase, sub) key so concurrent charges touch
    // only per-node cells (disjoint across shards), never the key table.
    if (config_.ledger != nullptr) config_.ledger->PrimeCurrentKey();
    const unsigned jobs = ShardJobs(actors_.size());
    par::ParallelFor(jobs, shards_, [this](std::uint64_t s, unsigned) {
      ShardTransmitPass(static_cast<unsigned>(s));
    });
    // Word-wise OR-merge in fixed shard order into the epoch-stamped global
    // bitset; serial, so boundary words shared by two shards merge cleanly.
    std::uint64_t tx_total = 0;
    for (unsigned s = 0; s < shards_; ++s) {
      merge_words_ += channel_.MergeTxShard(tx_buffers_[s]);
      tx_total += shard_tx_count_[s];
    }
    par::ParallelFor(jobs, shards_, [this](std::uint64_t s, unsigned) {
      ShardListenPass(static_cast<unsigned>(s));
    });
    std::uint64_t listen_total = 0;
    for (unsigned s = 0; s < shards_; ++s) listen_total += shard_listen_count_[s];
    // Totals are plain sums — order-independent — so committing them once
    // per round keeps the meter exactly conserved at round boundaries.
    energy_.CommitShardTotals(tx_total, listen_total);
    if (config_.trace != nullptr) EmitRoundTrace();
  }
  node_rounds_ += actors_.size();
  last_awake_round_ = now_;
  any_awake_round_ = true;
  if (rounds_executed_ != nullptr) rounds_executed_->Inc();
  if (config_.telemetry != nullptr &&
      now_ % std::max<Round>(config_.telemetry->HeartbeatEvery(), 1) == 0) {
    EmitHeartbeat();
  }

  // Phase 3: parallel per-shard protocol steps, then a serial filing pass in
  // global actor order — filing mutates cross-node state (finished_, the
  // wheel, residual compaction) whose order the goldens pin. Timeline runs
  // keep the serial reference resume (annotations mutate shared state
  // inside Step).
  const obs::ScopedTimer timing(resume_timer_);
  next_actors_.clear();
  for (std::vector<NodeId>& list : next_shard_actors_) list.clear();
  if (ParallelStepEligible()) {
    par::ParallelFor(ShardJobs(actors_.size()), shards_,
                     [this](std::uint64_t s, unsigned) {
      const std::vector<NodeId>& list = shard_actors_[s];
      for (std::size_t i = 0; i < list.size(); ++i) {
        PrefetchResume(list, i);
        const NodeId v = list[i];
        ctx_hot_[v].now = static_cast<std::uint32_t>(now_ + 1);
        flat_->Step(v, View(v));
      }
    });
    for (const NodeId v : actors_) FileAction(v, next_actors_, &next_shard_actors_);
  } else {
    for (std::size_t i = 0; i < actors_.size(); ++i) {
      PrefetchResume(actors_, i);
      const NodeId v = actors_[i];
      ctx_hot_[v].now = static_cast<std::uint32_t>(now_ + 1);
      ResumeAndFile(v, next_actors_, &next_shard_actors_);
    }
  }
  actors_.swap(next_actors_);
  shard_actors_.swap(next_shard_actors_);
}

void Scheduler::EmitHeartbeat() {
  // Emitted after the round's channel/energy work, before the actors are
  // resumed for the next round, so the gauges describe the round that just
  // executed. Heartbeats ride the bounded queue: a consumer that cannot
  // keep up loses heartbeats (counted), never the control envelopes.
  obs::JsonValue event = obs::JsonValue::MakeObject();
  event.Set("event", obs::JsonValue("round"));
  event.Set("round", obs::JsonValue(now_));
  event.Set("awake", obs::JsonValue(static_cast<std::uint64_t>(actors_.size())));
  event.Set("decided", obs::JsonValue(static_cast<std::uint64_t>(retired_)));
  event.Set("finished", obs::JsonValue(static_cast<std::uint64_t>(finished_)));
  event.Set("live_edges",
            obs::JsonValue(residual_.has_value() ? residual_->LiveEdges()
                                                 : graph_->NumEdges()));
  config_.telemetry->Emit(event);
}

RunStats Scheduler::RunUntil(Round limit) {
  EMIS_EXPECTS(spawned_, "call Spawn before running");
  limit = std::min(limit, config_.max_rounds);

  while (!AllFinished()) {
    // If nobody acts this round, jump to the next wake event.
    if (actors_.empty()) {
      const Round next_wake = NextWakeRound();
      if (next_wake == kNoWake) {
        // Every remaining protocol sleeps forever; nothing further happens.
        // (Cannot occur with SleepFor/SleepUntil, which are finite, but a
        // protocol that never finishes after its last action lands here.)
        break;
      }
      // Clamp the jump at `limit`: the virtual clock must not overshoot the
      // run bound, and rounds_skipped_ must count only rounds actually
      // skipped within this run (the remainder is counted if a later
      // RunUntil resumes past it).
      const Round jump_to = std::min(limit, std::max(now_, next_wake));
      if (rounds_skipped_ != nullptr) rounds_skipped_->Inc(jump_to - now_);
      now_ = jump_to;
    }
    if (now_ >= limit) break;
    // The hot contexts store the clock narrowed (HotNodeContext::kNowMax);
    // the skip-jump above is the only way now_ can move fast, so one check
    // per executed round keeps every per-node store exact.
    EMIS_INVARIANT(now_ < HotNodeContext::kNowMax,
                   "round clock outgrew the narrowed hot-context field");

    // Wake sleepers due now; they may join this round's actors. Swap the
    // bucket out first: woken nodes push fresh wheel entries as they file
    // sleeps (never into this slot — the strict horizon sends distance-W
    // wakes to overflow), and sorting in scratch keeps the bucket's
    // capacity for its next lap.
    if (overflow_min_ <= now_) MigrateOverflow();
    std::vector<NodeId>& bucket = wake_wheel_[now_ & (kWheelSize - 1)];
    if (!bucket.empty()) {
      const obs::ScopedTimer timing(wake_timer_);
      wake_scratch_.clear();
      wake_scratch_.swap(bucket);
      // Heap-order compatibility: same-round wakes resume in node order.
      std::sort(wake_scratch_.begin(), wake_scratch_.end());
      wheel_count_ -= wake_scratch_.size();
      if (wake_events_ != nullptr) wake_events_->Inc(wake_scratch_.size());
      if (ParallelStepEligible() && wake_scratch_.size() >= kParallelMinNodes) {
        // The sorted bucket partitions into contiguous per-shard segments;
        // step them on the pool, then file serially in the same sorted
        // (node-ascending) order the serial path uses.
        par::ParallelFor(shards_, shards_, [this](std::uint64_t s, unsigned) {
          const auto begin = std::lower_bound(wake_scratch_.begin(),
                                              wake_scratch_.end(),
                                              shard_begin_[s]);
          const auto end = std::lower_bound(wake_scratch_.begin(),
                                            wake_scratch_.end(),
                                            shard_begin_[s + 1]);
          for (auto it = begin; it != end; ++it) {
            const NodeId v = *it;
            EMIS_INVARIANT(ctx_hot_[v].WakeRound() == now_, "missed a wake event");
            ctx_hot_[v].now = static_cast<std::uint32_t>(now_);
            flat_->Step(v, View(v));
          }
        });
        for (const NodeId v : wake_scratch_) {
          FileAction(v, actors_, &shard_actors_);
        }
      } else {
        for (std::size_t i = 0; i < wake_scratch_.size(); ++i) {
          PrefetchResume(wake_scratch_, i);
          const NodeId v = wake_scratch_[i];
          EMIS_INVARIANT(ctx_hot_[v].WakeRound() == now_, "missed a wake event");
          ctx_hot_[v].now = static_cast<std::uint32_t>(now_);
          ResumeAndFile(v, actors_, Sharded() ? &shard_actors_ : nullptr);
        }
      }
    }
    if (actors_.empty()) continue;  // woken nodes all went back to sleep

    if (Sharded()) {
      ExecuteRoundSharded();
    } else {
      ExecuteRound();
    }
    ++now_;
  }

  if (arena_reserved_ != nullptr) {
    const FrameArena::Stats& arena = arena_.GetStats();
    arena_reserved_->Set(static_cast<double>(arena.reserved_bytes));
    arena_used_->Set(static_cast<double>(arena.used_bytes));
  }
  if (merge_words_metric_ != nullptr) {
    merge_words_metric_->Set(static_cast<double>(merge_words_));
    barrier_waits_metric_->Set(
        static_cast<double>(par::BarrierWaits() - barrier_waits_base_));
  }
  if (mem_hot_metric_ != nullptr) {
    // Working-set gauges (DESIGN.md §12.2): bytes the resume loop streams
    // per array. The lane gauge reads the stride the protocol published —
    // zero for the coroutine engine, whose per-node machine state lives in
    // arena frames (reported by the arena gauges instead).
    const double n = static_cast<double>(graph_->NumNodes());
    mem_hot_metric_->Set(n * static_cast<double>(sizeof(HotNodeContext)));
    mem_cold_metric_->Set(n * static_cast<double>(sizeof(ColdNodeContext)));
    mem_lane_metric_->Set(n * static_cast<double>(flat_lanes_.stride));
  }
  if (live_edges_metric_ != nullptr && residual_.has_value()) {
    live_edges_metric_->Set(static_cast<double>(residual_->LiveEdges()));
    compactions_metric_->Inc(residual_->Compactions() - compactions_flushed_);
    compactions_flushed_ = residual_->Compactions();
    edges_reclaimed_metric_->Inc(residual_->EdgesReclaimed() -
                                 edges_reclaimed_flushed_);
    edges_reclaimed_flushed_ = residual_->EdgesReclaimed();
  }

  RunStats stats;
  stats.rounds_used = any_awake_round_ ? last_awake_round_ + 1 : 0;
  stats.node_rounds = node_rounds_;
  stats.nodes_finished = finished_;
  stats.hit_round_limit = !AllFinished() && now_ >= config_.max_rounds;
  EMIS_ENSURES(stats.nodes_finished <= graph_->NumNodes(),
               "more protocols finished than nodes exist");
  EMIS_ENSURES(stats.rounds_used <= config_.max_rounds,
               "round complexity exceeds the configured hard stop");
  // The run is over (not merely paused at `limit`): close the trailing phase
  // span so per-phase deltas cover the whole run.
  if (config_.timeline != nullptr && (AllFinished() || stats.hit_round_limit)) {
    config_.timeline->Close(stats.rounds_used);
  }
  return stats;
}

}  // namespace emis
