// Word-parallel pull-scan kernels for the channel's high-degree rows.
//
// The pull direction resolves a listener by scanning its (sorted) row of
// candidate neighbor ids against the round's packed transmitter bitset —
// one epoch-stamped 64-bit word per 64 node ids (Channel's TxWord mirror).
// This header factors the loss-free inner loop out of Channel into free
// kernels so the implementation can be picked at runtime:
//
//   * ScanRowPortable — the reference loop: one cached bitset word per
//     64-id block, O(1) per row entry;
//   * ScanRowAvx2 — 4 row entries per step via AVX2 gathers over the
//     (epoch, bits) pairs (compiled in its own -mavx2 TU; on non-x86 or
//     pre-AVX2 toolchains it compiles as a forwarder to the portable loop);
//   * ResolveScanRowFn — runtime dispatch: AVX2 when the CPU supports it,
//     portable otherwise. Resolved once per process.
//
// Contract (pinned by tests/test_channel_kernels.cpp): both kernels return
// the exact transmitting-neighbor count and the row POSITION of the last
// transmitting entry — Channel turns that into the last-entry payload, so
// receptions are bit-identical whichever kernel ran. Only the loss-free
// path dispatches here; lossy rows need a per-link erasure draw in visit
// order and keep the scalar loop.
#pragma once

#include <cstddef>
#include <cstdint>

#include "radio/types.hpp"

namespace emis::chan_kernels {

/// One packed transmitter word: bit (u & 63) of `bits` is set iff node u
/// transmitted in round `epoch`. Words are invalidated lazily by the epoch
/// stamp, so a stale word (epoch != current) reads as "no transmitters".
struct TxWord {
  std::uint64_t epoch = 0;
  std::uint64_t bits = 0;
};

/// Sentinel for "no row entry transmitted".
inline constexpr std::size_t kNoHit = ~std::size_t{0};

struct ScanHits {
  std::uint32_t count = 0;       ///< transmitting entries in the row
  std::size_t last_hit = kNoHit; ///< row index of the LAST transmitting entry
};

using ScanRowFn = ScanHits (*)(const NodeId* row, std::size_t size,
                               const TxWord* words, std::uint64_t epoch);

/// Reference kernel; always available.
ScanHits ScanRowPortable(const NodeId* row, std::size_t size,
                         const TxWord* words, std::uint64_t epoch);

/// AVX2 kernel (own translation unit). Bit-identical results to the
/// portable kernel; falls back to it when built without AVX2 support.
ScanHits ScanRowAvx2(const NodeId* row, std::size_t size, const TxWord* words,
                     std::uint64_t epoch);

/// The kernel for this machine: ScanRowAvx2 iff the CPU reports AVX2,
/// else ScanRowPortable. Cached after the first call.
ScanRowFn ResolveScanRowFn() noexcept;

}  // namespace emis::chan_kernels
