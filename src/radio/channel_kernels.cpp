#include "radio/channel_kernels.hpp"

namespace emis::chan_kernels {

ScanHits ScanRowPortable(const NodeId* row, std::size_t size,
                         const TxWord* words, std::uint64_t epoch) {
  ScanHits h;
  std::size_t cached_index = ~std::size_t{0};
  std::uint64_t cached_bits = 0;
  for (std::size_t i = 0; i < size; ++i) {
    const NodeId u = row[i];
    const std::size_t index = u >> 6;
    if (index != cached_index) {
      cached_index = index;
      const TxWord& word = words[index];
      cached_bits = word.epoch == epoch ? word.bits : 0;
    }
    if (((cached_bits >> (u & 63)) & 1u) == 0) continue;
    ++h.count;
    h.last_hit = i;
  }
  return h;
}

ScanRowFn ResolveScanRowFn() noexcept {
  static const ScanRowFn fn = [] {
#if defined(__x86_64__) || defined(_M_X64)
    if (__builtin_cpu_supports("avx2")) return &ScanRowAvx2;
#endif
    return &ScanRowPortable;
  }();
  return fn;
}

}  // namespace emis::chan_kernels
