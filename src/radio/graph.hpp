// Immutable undirected communication graph in compressed-sparse-row form.
//
// Nodes are dense 0-based NodeIds. The graph is simple (no self-loops, no
// parallel edges) and symmetric; `GraphBuilder` enforces this at build time.
// Neighbor lists are sorted, enabling O(log d) adjacency queries.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "radio/size_budget.hpp"
#include "radio/types.hpp"

namespace emis {

/// An undirected edge; normalized so that u < v once inside a Graph.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class GraphBuilder;
class Graph;

/// Result of Graph::Induced: the subgraph plus the id mapping back to the
/// parent graph. Subgraph node i corresponds to `to_original[i]`.
struct InducedSubgraph;

class Graph {
 public:
  /// The empty graph on zero nodes.
  Graph() = default;

  /// Builds a graph on `num_nodes` nodes from an edge list. Duplicate edges
  /// (in either orientation) are rejected; self-loops are rejected.
  static Graph FromEdges(NodeId num_nodes, std::span<const Edge> edges);
  static Graph FromEdges(NodeId num_nodes, std::initializer_list<Edge> edges) {
    return FromEdges(num_nodes, std::span<const Edge>(edges.begin(), edges.size()));
  }

  /// Wraps an externally-owned CSR without copying it — the zero-copy path
  /// behind graph_io::MapBinaryCsr. `owner` keeps the backing storage (an
  /// mmap) alive for the graph's lifetime; copies of the graph share it.
  /// The arrays must already satisfy the class invariants (symmetric,
  /// sorted rows, no self-loops or duplicates): the binary loader validates
  /// the header and section bounds, not the adjacency content, exactly so
  /// that loading never has to fault in the full edge array.
  static Graph FromMappedCsr(std::shared_ptr<const void> owner,
                             const std::uint64_t* offsets, NodeId num_nodes,
                             const NodeId* adjacency, std::uint64_t adj_entries,
                             std::uint32_t max_degree);

  NodeId NumNodes() const noexcept {
    return mapping_ == nullptr ? static_cast<NodeId>(offsets_.size() - 1)
                               : mapped_nodes_;
  }
  std::uint64_t NumEdges() const noexcept { return NumAdjEntries() / 2; }

  std::uint32_t Degree(NodeId v) const {
    EMIS_REQUIRE(v < NumNodes(), "node out of range");
    const std::uint64_t* offsets = OffsetArray();
    return static_cast<std::uint32_t>(offsets[v + 1] - offsets[v]);
  }

  /// Sorted neighbor list of v.
  std::span<const NodeId> Neighbors(NodeId v) const {
    EMIS_REQUIRE(v < NumNodes(), "node out of range");
    const std::uint64_t* offsets = OffsetArray();
    return {AdjArray() + offsets[v], offsets[v + 1] - offsets[v]};
  }

  /// Raw CSR views: the (NumNodes() + 1)-entry row-offset array and the
  /// directed adjacency array it indexes (each undirected edge appears
  /// twice). Consumed by the binary serializer (radio/graph_io.hpp) and the
  /// scheduler's edge-balanced shard cut.
  std::span<const std::uint64_t> RowOffsets() const noexcept {
    return {OffsetArray(), static_cast<std::size_t>(NumNodes()) + 1};
  }
  std::span<const NodeId> Adjacency() const noexcept {
    return {AdjArray(), static_cast<std::size_t>(NumAdjEntries())};
  }

  bool HasEdge(NodeId u, NodeId v) const;

  /// Maximum degree Δ over all nodes (0 for the empty/edgeless graph).
  std::uint32_t MaxDegree() const noexcept { return max_degree_; }

  /// All edges, each once, with u < v, sorted lexicographically.
  std::vector<Edge> EdgeList() const;

  /// The subgraph induced by `nodes` (need not be sorted; duplicates
  /// rejected). Node ids are remapped densely; the sorted mapping back to
  /// this graph's ids is returned alongside.
  InducedSubgraph Induced(std::span<const NodeId> nodes) const;

  /// Connected components; `component[v]` is a dense component index and the
  /// count of components is returned.
  std::uint32_t ConnectedComponents(std::vector<std::uint32_t>& component) const;
  bool IsConnected() const;

  /// The square graph G²: same nodes, an edge wherever the distance in G is
  /// 1 or 2. Used for distance-2 colorings (TDMA slot assignment where even
  /// a *listener's* neighbors must not share a slot).
  Graph Square() const;

  /// BFS distances from `source` (kUnreachable for other components).
  static constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};
  std::vector<std::uint32_t> BfsDistances(NodeId source) const;

 private:
  friend class GraphBuilder;

  std::uint64_t NumAdjEntries() const noexcept {
    return mapping_ == nullptr ? adjacency_.size() : mapped_entries_;
  }
  const std::uint64_t* OffsetArray() const noexcept {
    return mapping_ == nullptr ? offsets_.data() : mapped_offsets_;
  }
  const NodeId* AdjArray() const noexcept {
    return mapping_ == nullptr ? adjacency_.data() : mapped_adjacency_;
  }

  // Owned storage (built graphs): offsets_ has NumNodes()+1 entries;
  // adjacency_ holds each edge twice.
  std::vector<std::uint64_t> offsets_{0};
  std::vector<NodeId> adjacency_;
  // Mapped storage (FromMappedCsr): the view pointers alias memory kept
  // alive by mapping_, never by this object — so defaulted copy/move stay
  // correct for both storage kinds (a copy shares the mapping).
  std::shared_ptr<const void> mapping_;
  const std::uint64_t* mapped_offsets_ = nullptr;
  const NodeId* mapped_adjacency_ = nullptr;
  NodeId mapped_nodes_ = 0;
  std::uint64_t mapped_entries_ = 0;
  std::uint32_t max_degree_ = 0;
};

struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;  // subgraph id -> original id
};

/// Mutable residual view over an immutable Graph: which nodes are still live
/// (may yet transmit or listen) plus, per node, a shrinking "scan row" that
/// the channel iterates instead of the full CSR row.
///
/// The scheduler retires a node once it reaches a terminal MIS decision
/// (joined / killed) or its protocol coroutine finishes. Retire(v):
///   * clears v's active bit and reclaims v's own row,
///   * decrements the live-degree of each of v's live neighbors, and
///   * compacts a neighbor's row in place once its dead fraction crosses ½
///     (survivors are shifted to the row prefix).
/// Channel scans then cost O(live prefix) per node instead of O(deg_G), so
/// per-round work tracks the residual graph that Lemma 5 / Lemma 20 argue
/// shrinks geometrically per Luby phase, not the seed graph.
///
/// Invariants:
///   * ScanRow(v) contains every live neighbor of a live v; dead entries in
///     the prefix never exceed the live ones (the ½ trigger).
///   * Compaction is a *stable* partition: surviving entries keep their
///     relative (sorted, ascending) CSR order. The pull channel resolves
///     payload ties by last-scanned row entry, so stability keeps that
///     tie-break independent of when rows were compacted (see channel.hpp).
///   * Amortized compaction work over a whole run is O(E): a row of length L
///     is only rewritten after ≥ L/2 of its entries died since it last
///     shrank.
class ResidualGraph {
 public:
  /// Starts with every node live and every row at its full CSR length. The
  /// adjacency is copied (it is compacted in place); `graph` itself is only
  /// read during construction.
  explicit ResidualGraph(const Graph& graph);

  NodeId NumNodes() const noexcept {
    return static_cast<NodeId>(rows_.size());
  }

  /// Whether v may still act on the channel.
  bool Active(NodeId v) const noexcept {
    return ((active_[v >> 6] >> (v & 63)) & 1u) != 0;
  }

  /// Number of still-live neighbors of v (0 once v itself retired).
  std::uint32_t LiveDegree(NodeId v) const noexcept {
    return rows_[v].live_degree;
  }

  /// The entries a channel scan must visit for v: the live prefix of its CSR
  /// row, sorted ascending. Contains all live neighbors plus at most an
  /// equal number of dead ones. Empty once v retired.
  std::span<const NodeId> ScanRow(NodeId v) const noexcept {
    const RowMeta& row = rows_[v];
    return {adjacency_.data() + row.begin, row.scan_len};
  }

  /// Permanently removes v from the residual graph. v must still be active;
  /// the caller (Scheduler::Retire) guarantees v never transmits or listens
  /// afterwards.
  void Retire(NodeId v);

  /// Edges whose endpoints are both still active.
  std::uint64_t LiveEdges() const noexcept { return live_edges_; }
  NodeId ActiveCount() const noexcept { return active_count_; }

  /// Telemetry: row compactions performed and directed CSR entries removed
  /// from scan rows so far (each entry counted once; ≤ 2E over a run).
  std::uint64_t Compactions() const noexcept { return compactions_; }
  std::uint64_t EdgesReclaimed() const noexcept { return edges_reclaimed_; }

 private:
  /// Stable in-place partition of w's scan row: survivors to the prefix.
  void CompactRow(NodeId w);

  /// Per-node row metadata, interleaved so the three fields every consumer
  /// reads together (ScanRow's begin+len, Retire's len+degree) land on one
  /// cache line per node instead of three parallel-array lines. Channel
  /// scans and retire-compaction both key this by *neighbor* id — a random
  /// access — so the interleave halves their miss traffic (size pinned in
  /// size_budget.hpp / tests/test_layout.cpp).
  struct RowMeta {
    std::uint64_t begin = 0;        // CSR row start
    std::uint32_t scan_len = 0;     // live-prefix length
    std::uint32_t live_degree = 0;  // live neighbors
  };
  static_assert(sizeof(RowMeta) == kResidualRowBytes,
                "row metadata outgrew its line budget (size_budget.hpp)");
  std::vector<RowMeta> rows_;
  std::vector<NodeId> adjacency_;  // mutable CSR copy
  std::vector<std::uint64_t> active_;       // node bitset, 64 nodes per word
  std::uint64_t live_edges_ = 0;
  NodeId active_count_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t edges_reclaimed_ = 0;
};

/// Incremental construction helper used by the generators.
///
/// Three edge-insertion styles with different cost profiles:
///   * AddEdge — append-only; the bulk-generator fast path. No hash-set
///     work unless AddEdgeIfAbsent has been called on this builder.
///   * AddEdgeIfAbsent — membership-checked insert (needs the answer *now*,
///     e.g. to count distinct edges). The membership set is materialized
///     lazily on first use, so pure-AddEdge builders never pay for it.
///   * AddEdgeDedup — append now, deduplicate once inside Build() via
///     sort + unique. Cheapest way to insert a stream with many repeats
///     when the caller does not need per-insert feedback (e.g. Square()).
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Pre-allocates the pending-edge list for `edges` insertions. Purely an
  /// allocation hint; generators with a known or expected edge count use it
  /// to avoid growth reallocations.
  void Reserve(std::uint64_t edges) { edges_.reserve(edges); }

  /// Adds the undirected edge {u, v}. Adding an existing edge or a self-loop
  /// throws PreconditionError (at AddEdge time for self-loops, at Build time
  /// for duplicates — unless AddEdgeDedup armed dedup-at-build).
  GraphBuilder& AddEdge(NodeId u, NodeId v);

  /// Adds {u, v} unless it already exists or u == v; returns whether added.
  /// First use materializes the membership set from the pending edges.
  /// Edges inserted later via AddEdgeDedup are invisible to this check.
  bool AddEdgeIfAbsent(NodeId u, NodeId v);

  /// Appends {u, v} (u != v required) without any membership check;
  /// duplicates are silently collapsed by Build(). O(1), no hashing.
  void AddEdgeDedup(NodeId u, NodeId v);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  std::uint64_t num_pending_edges() const noexcept { return edges_.size(); }

  Graph Build() &&;

 private:
  void MaterializeSeen();

  NodeId num_nodes_;
  std::vector<Edge> edges_;
  // Membership set for AddEdgeIfAbsent; keyed by (u << 32) | v with u < v.
  // Empty and untouched until the first AddEdgeIfAbsent call (tracking_).
  std::unordered_set<std::uint64_t> seen_;
  bool tracking_ = false;
  bool dedup_at_build_ = false;
};

}  // namespace emis
