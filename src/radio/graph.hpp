// Immutable undirected communication graph in compressed-sparse-row form.
//
// Nodes are dense 0-based NodeIds. The graph is simple (no self-loops, no
// parallel edges) and symmetric; `GraphBuilder` enforces this at build time.
// Neighbor lists are sorted, enabling O(log d) adjacency queries.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "radio/types.hpp"

namespace emis {

/// An undirected edge; normalized so that u < v once inside a Graph.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class GraphBuilder;
class Graph;

/// Result of Graph::Induced: the subgraph plus the id mapping back to the
/// parent graph. Subgraph node i corresponds to `to_original[i]`.
struct InducedSubgraph;

class Graph {
 public:
  /// The empty graph on zero nodes.
  Graph() = default;

  /// Builds a graph on `num_nodes` nodes from an edge list. Duplicate edges
  /// (in either orientation) are rejected; self-loops are rejected.
  static Graph FromEdges(NodeId num_nodes, std::span<const Edge> edges);
  static Graph FromEdges(NodeId num_nodes, std::initializer_list<Edge> edges) {
    return FromEdges(num_nodes, std::span<const Edge>(edges.begin(), edges.size()));
  }

  NodeId NumNodes() const noexcept { return static_cast<NodeId>(offsets_.size() - 1); }
  std::uint64_t NumEdges() const noexcept { return adjacency_.size() / 2; }

  std::uint32_t Degree(NodeId v) const {
    EMIS_REQUIRE(v < NumNodes(), "node out of range");
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of v.
  std::span<const NodeId> Neighbors(NodeId v) const {
    EMIS_REQUIRE(v < NumNodes(), "node out of range");
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  bool HasEdge(NodeId u, NodeId v) const;

  /// Maximum degree Δ over all nodes (0 for the empty/edgeless graph).
  std::uint32_t MaxDegree() const noexcept { return max_degree_; }

  /// All edges, each once, with u < v, sorted lexicographically.
  std::vector<Edge> EdgeList() const;

  /// The subgraph induced by `nodes` (need not be sorted; duplicates
  /// rejected). Node ids are remapped densely; the sorted mapping back to
  /// this graph's ids is returned alongside.
  InducedSubgraph Induced(std::span<const NodeId> nodes) const;

  /// Connected components; `component[v]` is a dense component index and the
  /// count of components is returned.
  std::uint32_t ConnectedComponents(std::vector<std::uint32_t>& component) const;
  bool IsConnected() const;

  /// The square graph G²: same nodes, an edge wherever the distance in G is
  /// 1 or 2. Used for distance-2 colorings (TDMA slot assignment where even
  /// a *listener's* neighbors must not share a slot).
  Graph Square() const;

  /// BFS distances from `source` (kUnreachable for other components).
  static constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};
  std::vector<std::uint32_t> BfsDistances(NodeId source) const;

 private:
  friend class GraphBuilder;
  // offsets_ has NumNodes()+1 entries; adjacency_ holds each edge twice.
  std::vector<std::uint64_t> offsets_{0};
  std::vector<NodeId> adjacency_;
  std::uint32_t max_degree_ = 0;
};

struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;  // subgraph id -> original id
};

/// Incremental construction helper used by the generators.
///
/// Three edge-insertion styles with different cost profiles:
///   * AddEdge — append-only; the bulk-generator fast path. No hash-set
///     work unless AddEdgeIfAbsent has been called on this builder.
///   * AddEdgeIfAbsent — membership-checked insert (needs the answer *now*,
///     e.g. to count distinct edges). The membership set is materialized
///     lazily on first use, so pure-AddEdge builders never pay for it.
///   * AddEdgeDedup — append now, deduplicate once inside Build() via
///     sort + unique. Cheapest way to insert a stream with many repeats
///     when the caller does not need per-insert feedback (e.g. Square()).
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Pre-allocates the pending-edge list for `edges` insertions. Purely an
  /// allocation hint; generators with a known or expected edge count use it
  /// to avoid growth reallocations.
  void Reserve(std::uint64_t edges) { edges_.reserve(edges); }

  /// Adds the undirected edge {u, v}. Adding an existing edge or a self-loop
  /// throws PreconditionError (at AddEdge time for self-loops, at Build time
  /// for duplicates — unless AddEdgeDedup armed dedup-at-build).
  GraphBuilder& AddEdge(NodeId u, NodeId v);

  /// Adds {u, v} unless it already exists or u == v; returns whether added.
  /// First use materializes the membership set from the pending edges.
  /// Edges inserted later via AddEdgeDedup are invisible to this check.
  bool AddEdgeIfAbsent(NodeId u, NodeId v);

  /// Appends {u, v} (u != v required) without any membership check;
  /// duplicates are silently collapsed by Build(). O(1), no hashing.
  void AddEdgeDedup(NodeId u, NodeId v);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  std::uint64_t num_pending_edges() const noexcept { return edges_.size(); }

  Graph Build() &&;

 private:
  void MaterializeSeen();

  NodeId num_nodes_;
  std::vector<Edge> edges_;
  // Membership set for AddEdgeIfAbsent; keyed by (u << 32) | v with u < v.
  // Empty and untouched until the first AddEdgeIfAbsent call (tracking_).
  std::unordered_set<std::uint64_t> seen_;
  bool tracking_ = false;
  bool dedup_at_build_ = false;
};

}  // namespace emis
