// Deterministic random number generation.
//
// Every simulation run is fully determined by (graph, algorithm, params, seed):
// the run seed is expanded with SplitMix64 into one independent xoshiro256**
// stream per node, so per-node randomness does not depend on scheduling order.
// This is what makes paired-seed experiments (e.g. CD vs beeping equivalence)
// and reproducible test failures possible.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "radio/types.hpp"

namespace emis {

/// SplitMix64 — tiny, high-quality mixer used to derive stream seeds.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// SplitMix64's finalizer as a stateless mixing step: a bijective avalanche
/// over one word. Building block for the counter-based hashes below.
constexpr std::uint64_t MixU64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Counter-based hash of (seed, a, b, c): a pure function — no stream state,
/// no draw order — so independent consumers evaluating the same tuple agree
/// exactly. This is what makes the channel's per-link fading identical under
/// push and pull resolution and across job counts: each (round, tx, rx) link
/// draw is addressed, never sequenced. Words are absorbed with distinct
/// golden-ratio offsets so permuted tuples hash independently.
constexpr std::uint64_t CounterHash(std::uint64_t seed, std::uint64_t a,
                                    std::uint64_t b, std::uint64_t c) noexcept {
  std::uint64_t z = seed;
  z = MixU64(z + 0x9e3779b97f4a7c15ULL + a);
  z = MixU64(z + 0x3c6ef372fe94f82aULL + b);
  z = MixU64(z + 0xdaa66d2c7ddf743fULL + c);
  return z;
}

/// The hash word as a uniform double in [0, 1) (53 bits), for counter-based
/// Bernoulli decisions: CounterHashUnit(...) < p.
constexpr double CounterHashUnit(std::uint64_t seed, std::uint64_t a,
                                 std::uint64_t b, std::uint64_t c) noexcept {
  return static_cast<double>(CounterHash(seed, a, b, c) >> 11) * 0x1.0p-53;
}

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse generator.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from a SplitMix64 stream, as recommended by
  /// the xoshiro authors.
  explicit constexpr Xoshiro256StarStar(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.Next();
    // An all-zero state is a fixed point; SplitMix64 cannot emit four zero
    // words in a row from any seed, but guard anyway.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// Convenience sampler wrapping a xoshiro stream with the distributions the
/// algorithms need. Cheap to copy; copies diverge (independent evolution of a
/// snapshot), so pass by reference when the stream must advance for the owner.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept
      : gen_(seed), seed_mix_(SplitMix64(seed ^ 0x6a09e667f3bcc909ULL).Next()) {}

  /// Derives an independent child stream. Children with distinct ids are
  /// statistically independent of each other and of the parent.
  Rng Split(std::uint64_t stream_id) const noexcept {
    SplitMix64 sm(seed_mix_ ^ (0xa0761d6478bd642fULL * (stream_id + 1)));
    return Rng(sm.Next(), /*tag=*/sm.Next());
  }

  std::uint64_t NextU64() noexcept { return gen_(); }

  /// Fair coin: true with probability 1/2.
  bool Bit() noexcept { return (gen_() >> 63) != 0; }

  /// Uniform integer in [0, bound). Requires bound >= 1. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t UniformBelow(std::uint64_t bound) noexcept {
    EMIS_ASSERT(bound >= 1, "UniformBelow requires bound >= 1");
    // Lemire 2019: Fast Random Integer Generation in an Interval.
    std::uint64_t x = gen_();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = gen_();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t UniformInRange(std::uint64_t lo, std::uint64_t hi) noexcept {
    EMIS_ASSERT(lo <= hi, "UniformInRange requires lo <= hi");
    return lo + UniformBelow(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformUnit() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p): true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformUnit() < p;
  }

  /// Geometric with success probability 1/2 and support {1, 2, 3, ...}:
  /// the number of fair coin flips up to and including the first head.
  /// This is the slot distribution of the paper's Snd-EBackoff (Algorithm 4).
  std::uint32_t GeometricHalf() noexcept {
    std::uint32_t count = 1;
    // Consume random words 64 flips at a time; a word of all-tails (prob
    // 2^-64) simply continues with the next word.
    for (;;) {
      std::uint64_t word = gen_();
      if (word != 0) {
        // Number of leading tails before the first head, scanning from LSB.
        return count + static_cast<std::uint32_t>(__builtin_ctzll(word));
      }
      count += 64;
    }
  }

  /// Number of consecutive Bernoulli(p) failures before the first success —
  /// Geometric(p) on support {0, 1, 2, ...} — drawn with a single uniform via
  /// inversion: floor(log(1-U) / log(1-p)). Equivalent in distribution to
  /// counting `!Bernoulli(p)` in a loop but O(1), which is what makes
  /// skip-sampling (jump directly to the next success in a long trial
  /// sequence) affordable on the channel/generator hot paths.
  /// Requires 0 < p <= 1.
  std::uint64_t GeometricSkip(double p) noexcept {
    EMIS_ASSERT(p > 0.0 && p <= 1.0, "GeometricSkip requires p in (0,1]");
    if (p >= 1.0) return 0;
    // UniformUnit() is in [0, 1), so 1-u is in (0, 1] and log1p(-u) is finite.
    const double u = UniformUnit();
    const double skip = std::floor(std::log1p(-u) / std::log1p(-p));
    // For tiny p the skip can exceed any practical sequence length; clamp
    // before the float->int conversion (which would otherwise be UB).
    constexpr double kMax = 9007199254740992.0;  // 2^53
    if (!(skip < kMax)) return static_cast<std::uint64_t>(kMax);
    return static_cast<std::uint64_t>(skip);
  }

  /// Geometric with success probability p and support {1, 2, 3, ...}:
  /// the index of the first success in a Bernoulli(p) sequence.
  /// Requires 0 < p <= 1.
  std::uint64_t Geometric(double p) noexcept {
    EMIS_ASSERT(p > 0.0 && p <= 1.0, "Geometric requires p in (0,1]");
    return 1 + GeometricSkip(p);
  }

  /// A uniformly random word with exactly `bits` random low bits
  /// (higher bits zero). Requires bits <= 64.
  std::uint64_t RandomBits(std::uint32_t bits) noexcept {
    EMIS_ASSERT(bits <= 64, "RandomBits requires bits <= 64");
    if (bits == 0) return 0;
    return gen_() >> (64 - bits);
  }

 private:
  Rng(std::uint64_t seed, std::uint64_t tag) noexcept : gen_(seed), seed_mix_(tag) {}

  Xoshiro256StarStar gen_;
  // Derived from the seed and mixed into Split() so that child streams of
  // differently-seeded parents differ, and grandchild streams differ from
  // child streams even when the same stream_id is reused at different depths.
  std::uint64_t seed_mix_;
};

}  // namespace emis
