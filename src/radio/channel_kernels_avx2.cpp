// AVX2 pull-scan kernel. Compiled with -mavx2 when the toolchain supports
// it (see src/CMakeLists.txt); otherwise this TU degrades to a forwarder so
// the symbol always links. Selection happens at runtime in
// ResolveScanRowFn — a binary built here still runs on pre-AVX2 hosts.
#include "radio/channel_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace emis::chan_kernels {

#if defined(__AVX2__)

ScanHits ScanRowAvx2(const NodeId* row, std::size_t size, const TxWord* words,
                     std::uint64_t epoch) {
  ScanHits h;
  // TxWord is a (epoch, bits) u64 pair; gather from the flat u64 view at
  // indices 2*word and 2*word+1. Four row entries per step: i32gather_epi64
  // consumes 4 x i32 indices and produces 4 x u64 lanes.
  const auto* flat = reinterpret_cast<const long long*>(words);
  const __m256i epoch_v = _mm256_set1_epi64x(static_cast<long long>(epoch));
  const __m256i one_v = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  std::uint32_t count = 0;
  for (; i + 4 <= size; i += 4) {
    const __m128i ids =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + i));
    const __m128i word_x2 = _mm_slli_epi32(_mm_srli_epi32(ids, 6), 1);
    const __m256i epochs = _mm256_i32gather_epi64(flat, word_x2, 8);
    const __m256i bits = _mm256_i32gather_epi64(
        flat, _mm_add_epi32(word_x2, _mm_set1_epi32(1)), 8);
    // A stale word (epoch mismatch) reads as no transmitters.
    const __m256i fresh = _mm256_cmpeq_epi64(epochs, epoch_v);
    const __m256i shift =
        _mm256_cvtepu32_epi64(_mm_and_si128(ids, _mm_set1_epi32(63)));
    const __m256i bit =
        _mm256_and_si256(_mm256_srlv_epi64(bits, shift), one_v);
    const __m256i hit =
        _mm256_cmpeq_epi64(_mm256_and_si256(bit, fresh), one_v);
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(hit)));
    if (mask != 0) {
      count += static_cast<std::uint32_t>(__builtin_popcount(mask));
      h.last_hit = i + (31u - static_cast<unsigned>(__builtin_clz(mask)));
    }
  }
  // Scalar tail (< 4 entries) through the reference kernel.
  const ScanHits tail = ScanRowPortable(row + i, size - i, words, epoch);
  count += tail.count;
  if (tail.last_hit != kNoHit) h.last_hit = i + tail.last_hit;
  h.count = count;
  return h;
}

#else  // !defined(__AVX2__)

ScanHits ScanRowAvx2(const NodeId* row, std::size_t size, const TxWord* words,
                     std::uint64_t epoch) {
  return ScanRowPortable(row, size, words, epoch);
}

#endif

}  // namespace emis::chan_kernels
