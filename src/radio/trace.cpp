#include "radio/trace.hpp"

#include <ostream>
#include <sstream>

namespace emis {

CsvTrace::CsvTrace(std::ostream& out) : out_(out) {
  out_ << "round,node,action,payload,reception,recv_payload\n";
}

CsvTrace::~CsvTrace() { Flush(); }

void CsvTrace::Flush() { out_.flush(); }

void CsvTrace::OnEvent(const TraceEvent& event) {
  out_ << event.round << ',' << event.node << ',' << ToString(event.action) << ',';
  if (event.action == ActionKind::kTransmit) out_ << event.payload;
  out_ << ',';
  if (event.action == ActionKind::kListen) {
    out_ << ToString(event.reception.kind) << ',';
    if (event.reception.kind == ReceptionKind::kMessage) out_ << event.reception.payload;
  } else {
    out_ << ',';
  }
  out_ << '\n';
}

std::string ToString(const TraceEvent& event) {
  std::ostringstream os;
  os << 'r' << event.round << " n" << event.node << ' ' << ToString(event.action);
  if (event.action == ActionKind::kTransmit) {
    os << '(' << event.payload << ')';
  } else if (event.action == ActionKind::kListen) {
    os << " -> " << ToString(event.reception.kind);
    if (event.reception.kind == ReceptionKind::kMessage) {
      os << '(' << event.reception.payload << ')';
    }
  }
  return os.str();
}

}  // namespace emis
