// Topology generators for experiments and tests.
//
// Every generator is deterministic given its Rng. Families marked (paper) are
// the ones the paper's analysis singles out; the rest give coverage of
// regimes that stress different parts of the algorithms (dense collision
// behaviour, deep BFS layers, isolated nodes, geometric locality, ...).
#pragma once

#include "radio/graph.hpp"
#include "radio/rng.hpp"

namespace emis::gen {

/// Erdős–Rényi G(n, p): each pair is an edge independently with prob. p.
Graph ErdosRenyi(NodeId n, double p, Rng& rng);

/// G(n, m): exactly m distinct uniform edges. Requires m <= n(n-1)/2.
Graph GnM(NodeId n, std::uint64_t m, Rng& rng);

/// Random geometric / unit-disk graph: n points uniform in the unit square,
/// edge iff Euclidean distance <= radius. The classic ad-hoc sensor layout.
Graph RandomGeometric(NodeId n, double radius, Rng& rng);

/// Two-dimensional grid of rows x cols nodes (4-neighborhood).
Graph Grid(NodeId rows, NodeId cols);

Graph Path(NodeId n);
Graph Cycle(NodeId n);

/// Star: node 0 is the hub adjacent to all others. Worst case for collision
/// handling at a single receiver.
Graph Star(NodeId n);

Graph Complete(NodeId n);
Graph CompleteBipartite(NodeId left, NodeId right);

/// Uniform random labeled tree (random Prüfer sequence). Requires n >= 1.
Graph RandomTree(NodeId n, Rng& rng);

/// Random d-regular-ish graph via pairing with rejection of conflicts; some
/// nodes may end with degree < d when the pairing stalls (documented, rare).
Graph NearRegular(NodeId n, std::uint32_t d, Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches m edges.
/// Heavy-tailed degrees — exercises large-Δ, small-average-degree behaviour.
Graph BarabasiAlbert(NodeId n, std::uint32_t m, Rng& rng);

/// (paper, Theorem 1) The lower-bound family: ⌊n/4⌋ disjoint edges plus the
/// remaining n - 2⌊n/4⌋ isolated nodes. Every isolated node must join the
/// MIS; every matched pair must break its tie.
Graph MatchingPlusIsolated(NodeId n);

/// A perfect matching on n nodes (n even): n/2 disjoint edges.
Graph PerfectMatching(NodeId n);

/// `count` disjoint cliques of `size` nodes each. High collision stress with
/// known MIS size (= count).
Graph DisjointCliques(NodeId count, NodeId size);

/// Caterpillar: a path spine of `spine` nodes, each with `legs` pendant
/// leaves. Mixes degree-1 and higher-degree nodes.
Graph Caterpillar(NodeId spine, NodeId legs);

/// n isolated nodes, no edges.
Graph Empty(NodeId n);

}  // namespace emis::gen
