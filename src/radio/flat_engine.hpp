// The flat execution backend: protocols as explicit state machines.
//
// The coroutine engine (radio/process.hpp) represents each node's program
// counter as a suspended coroutine stack; resuming it costs an indirect
// jump into an arena frame plus symmetric transfers through every nested
// sub-task. The flat engine replaces that with one FlatProtocol object that
// owns a packed per-node lane (a small struct of counters and flags in a
// contiguous SoA-style vector) and a Step() that advances the node's state
// machine in place. The scheduler is otherwise unchanged: the same wake
// wheel, the same two-phase channel resolution, the same energy meter,
// trace sink, timeline, and Retire() compaction.
//
// Equivalence contract (pinned by tests/test_flat_engine.cpp): a flat
// machine must file the *same actions in the same rounds*, consume its
// node's RNG stream with the *same draws in the same order*, and emit the
// same Phase/SubPhase annotations at the same rounds as the coroutine
// protocol it mirrors. Two rules make this exact:
//
//   1. Step() runs until it files a real action (transmit, listen, or a
//      strictly-future sleep) or the program ends. Zero-length sleeps are
//      resolved inside Step, mirroring SleepAwait::await_ready() — they
//      never reach the scheduler in either engine.
//   2. Every RNG draw and annotation happens at the same point of the
//      node's program order. Awaiting a child Task starts the child
//      immediately (symmetric transfer), so a nested coroutine call
//      behaves exactly like inlining its body — flat sub-machines are
//      therefore stepped inline at the call site.
#pragma once

#include <cstdint>
#include <string_view>

#include "obs/phase_timeline.hpp"
#include "radio/model.hpp"
#include "radio/process.hpp"
#include "radio/rng.hpp"
#include "radio/types.hpp"

namespace emis {

/// The action/observation surface a flat state machine sees: the NodeApi
/// equivalent over the same hot/cold context halves the scheduler resolves
/// against. Cheap value type (holds the 16-byte NodeContext view); wraps
/// one node for the duration of one Step(). Scheduling reads and action
/// filing touch only the hot half; Rand/Heard/EnergySpent and annotations
/// reach into the cold half — which is exactly the split the scheduler's
/// prefetcher assumes (transmit/sleep steps never fault a cold line in).
class FlatCtx {
 public:
  explicit FlatCtx(NodeContext ctx) noexcept : ctx_(ctx) {}

  NodeId Id() const noexcept { return ctx_.cold->id; }
  Round Now() const noexcept { return ctx_.hot->now; }
  Rng& Rand() const noexcept { return ctx_.cold->rng; }

  /// Result of the node's last listen action.
  const Reception& Heard() const noexcept { return ctx_.cold->last_reception; }

  /// Awake rounds this node has paid so far (reads the scheduler's meter).
  std::uint64_t EnergySpent() const noexcept {
    return ctx_.cold->energy != nullptr ? ctx_.cold->energy->Awake() : 0;
  }

  /// Phase / sub-phase annotations; same semantics as NodeApi.
  void Phase(std::string_view base,
             std::uint64_t index = obs::PhaseTimeline::kNoIndex) const {
    if (ctx_.cold->timeline != nullptr) {
      ctx_.cold->timeline->Annotate(base, index, ctx_.hot->now);
    }
  }
  void SubPhase(std::string_view base,
                std::uint64_t index = obs::PhaseTimeline::kNoIndex) const {
    if (ctx_.cold->timeline != nullptr) {
      ctx_.cold->timeline->AnnotateSub(base, index, ctx_.hot->now);
    }
  }

  /// Files one awake transmit round. The caller must yield out of Step()
  /// immediately after (the protothread macros in core/flat_mis.cpp do).
  void Transmit(std::uint64_t payload = 1) const noexcept {
    ctx_.hot->FileTransmit(payload);
  }

  /// Files one awake listen round.
  void Listen() const noexcept { ctx_.hot->FileListen(); }

  /// Files a sleep until absolute round `round` and returns true, or
  /// returns false when the sleep is zero-length (already due) — the
  /// machine must then continue executing without yielding, exactly like
  /// SleepAwait::await_ready() short-circuiting a coroutine co_await.
  bool SleepUntil(Round round) const noexcept {
    if (round <= ctx_.hot->now) return false;
    ctx_.hot->FileSleep(round);
    return true;
  }

  /// Files a sleep for `rounds` rounds; false (no yield) when rounds == 0.
  bool SleepFor(Round rounds) const noexcept {
    return SleepUntil(ctx_.hot->now + rounds);
  }

  /// Terminal-decision marker; same semantics as NodeApi::Retire().
  void Retire() const noexcept { ctx_.hot->RequestRetire(); }

 private:
  NodeContext ctx_;
};

/// A batched protocol: one object drives every node's state machine. The
/// scheduler calls Step(v) wherever the coroutine engine would resume node
/// v's coroutine, passing the node's context view by value; Step must file
/// exactly one action through FlatCtx (transmit / listen / strictly-future
/// sleep) or mark the program finished via ctx.MarkDone() (with
/// FlatCtx::Retire() where the coroutine protocol would have called
/// api.Retire()).
class FlatProtocol {
 public:
  /// Byte layout of the per-node lane array: node v's machine state lives at
  /// `base + stride * v`. The scheduler prefetches upcoming lanes with this
  /// (resume order is wake order, not node order, so the hardware stride
  /// detector cannot) — purely a performance hint; {nullptr, 0} disables it.
  struct LaneLayout {
    const void* base = nullptr;
    std::size_t stride = 0;
  };

  virtual ~FlatProtocol() = default;

  FlatProtocol() = default;
  FlatProtocol(const FlatProtocol&) = delete;
  FlatProtocol& operator=(const FlatProtocol&) = delete;

  virtual void Step(NodeId v, NodeContext ctx) = 0;

  virtual LaneLayout Lanes() const noexcept { return {}; }
};

}  // namespace emis
