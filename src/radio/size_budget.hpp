// Compile-time size budgets for the per-node hot-path structs.
//
// The flat engine's wall clock is dominated by how many cache lines the
// resume loop streams per node (DESIGN.md §12.2): every byte added to a
// hot struct is paid once per node per touched round, so growth must be a
// deliberate, reviewed decision — not an accident of a convenient field.
// Each budget below is static_asserted at the owning struct's definition
// site (radio/process.hpp for the context halves, core/flat_mis.cpp for
// the protothread lanes), which turns a re-bloated hot line into a compile
// error pointing here instead of a perf mystery three PRs later.
// tests/test_layout.cpp additionally pins field placement, alignment, and
// the published lane strides, so a silent reorder cannot undo the split.
#pragma once

#include <cstddef>

namespace emis {

/// HotNodeContext: the half of a node's state the scheduler streams on
/// every resume — pending action argument, narrowed round clock, packed
/// flags. Two 8-byte slots; four nodes per cache line, none straddling.
inline constexpr std::size_t kHotContextBytes = 16;

/// ColdNodeContext: RNG state, last reception, coroutine handle, and the
/// energy/timeline pointers — touched only when a node actually acts.
inline constexpr std::size_t kColdContextBytes = 88;

/// NodeContext: the two-pointer hot/cold view handed to protocols.
inline constexpr std::size_t kContextViewBytes = 16;

/// ResidualGraph::RowMeta: per-node row begin/scan-length/live-degree,
/// interleaved so channel scans and retire-compaction touch one random
/// line per neighbor instead of three parallel-array lines.
inline constexpr std::size_t kResidualRowBytes = 16;

// Flat protothread lanes (core/flat_mis.cpp). A lane holds everything one
// node's state machine keeps alive across yields; the scheduler prefetches
// lanes by the stride FlatProtocol::Lanes() publishes, so these budgets are
// also what the prefetcher's coverage assumptions rest on.
inline constexpr std::size_t kBackoffLaneBytes = 24;
inline constexpr std::size_t kCdLaneBytes = 20;
inline constexpr std::size_t kSimCdLaneBytes = 40;
inline constexpr std::size_t kGhaffariLaneBytes = 48;
inline constexpr std::size_t kCompetitionLaneBytes = 40;
inline constexpr std::size_t kNoCdEpochLaneBytes = 160;
inline constexpr std::size_t kNoCdLaneBytes = 168;
inline constexpr std::size_t kDeltaLaneBytes = 208;

}  // namespace emis
