// Fundamental identifiers and helpers shared by every module.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace emis {

/// Index of a node in the communication graph. Dense, 0-based.
using NodeId = std::uint32_t;

/// A synchronous timestep of the radio model. Rounds are global and 0-based.
using Round = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr Round kForever = std::numeric_limits<Round>::max();

/// Thrown when a caller violates a documented precondition of the public API.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant of the simulator is violated. Seeing this
/// exception always indicates a bug in the library, never user error.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void PreconditionFailure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line) +
                          (msg.empty() ? "" : (" — " + msg)));
}
[[noreturn]] inline void InvariantFailure(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  throw InvariantError(std::string("invariant violated: ") + expr + " at " +
                       file + ":" + std::to_string(line) +
                       (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

/// Precondition check on public entry points; always on (cheap relative to
/// simulation work) so misuse fails loudly in release builds too.
#define EMIS_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) ::emis::detail::PreconditionFailure(#expr, __FILE__, __LINE__, msg); \
  } while (false)

/// Internal invariant check.
#define EMIS_ASSERT(expr, msg)                                               \
  do {                                                                       \
    if (!(expr)) ::emis::detail::InvariantFailure(#expr, __FILE__, __LINE__, msg); \
  } while (false)

/// ceil(log2(x)) for x >= 1; returns 0 for x in {0, 1}. Used for the paper's
/// ⌈log Δ⌉ backoff window and for log-scale parameter derivations.
constexpr std::uint32_t CeilLog2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  std::uint32_t bits = 0;
  std::uint64_t v = x - 1;
  while (v > 0) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

/// floor(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr std::uint32_t FloorLog2(std::uint64_t x) noexcept {
  std::uint32_t bits = 0;
  while (x > 1) {
    x >>= 1;
    ++bits;
  }
  return bits;
}

static_assert(CeilLog2(1) == 0);
static_assert(CeilLog2(2) == 1);
static_assert(CeilLog2(3) == 2);
static_assert(CeilLog2(1024) == 10);
static_assert(CeilLog2(1025) == 11);
static_assert(FloorLog2(1) == 0);
static_assert(FloorLog2(1023) == 9);
static_assert(FloorLog2(1024) == 10);

}  // namespace emis
