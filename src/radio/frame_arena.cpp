#include "radio/frame_arena.hpp"

#include <algorithm>
#include <new>

#include "core/contracts.hpp"

namespace emis {
namespace {

thread_local FrameArena* tls_current_arena = nullptr;

constexpr std::size_t kHeaderBytes = alignof(std::max_align_t);

/// Prefix of every frame_alloc block. Sized to max_align so the frame that
/// follows keeps the alignment ::operator new would have given it.
struct alignas(std::max_align_t) FrameHeader {
  FrameArena* arena;      // null = heap allocation
  std::size_t total_bytes;// header + frame, as requested from the backend
};
static_assert(sizeof(FrameHeader) <= kHeaderBytes);

}  // namespace

FrameArena::~FrameArena() {
  for (void* slab : slabs_) ::operator delete(slab);
}

void* FrameArena::Allocate(std::size_t bytes) {
  bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
  ++stats_.frame_allocations;
  ++stats_.live_frames;
  for (SizeClass& pool : pools_) {
    if (pool.bytes == bytes && pool.head != nullptr) {
      FreeNode* node = pool.head;
      pool.head = node->next;
      ++stats_.pool_reuses;
      return node;
    }
  }
  if (bump_remaining_ < bytes) {
    // A frame larger than the growth cap gets a dedicated slab; the current
    // bump slab (if any) keeps serving smaller frames next time it fits.
    const std::size_t slab_bytes = std::max(next_slab_bytes_, bytes);
    auto* slab = static_cast<std::byte*>(::operator new(slab_bytes));
    slabs_.push_back(slab);
    stats_.reserved_bytes += slab_bytes;
    next_slab_bytes_ = std::min(next_slab_bytes_ * 2, kMaxSlabBytes);
    bump_ = slab;
    bump_remaining_ = slab_bytes;
  }
  void* p = bump_;
  bump_ += bytes;
  bump_remaining_ -= bytes;
  stats_.used_bytes += bytes;
  EMIS_ENSURES(reinterpret_cast<std::uintptr_t>(p) % kAlign == 0,
               "arena block must keep max_align_t alignment");
  return p;
}

void FrameArena::Recycle(void* p, std::size_t bytes) noexcept {
  bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
  EMIS_EXPECTS(p != nullptr, "cannot recycle a null frame");
  EMIS_INVARIANT(stats_.live_frames > 0, "recycle without a live frame");
  --stats_.live_frames;
  auto* node = static_cast<FreeNode*>(p);
  for (SizeClass& pool : pools_) {
    if (pool.bytes == bytes) {
      node->next = pool.head;
      pool.head = node;
      return;
    }
  }
  pools_.push_back({bytes, node});
  node->next = nullptr;
}

FrameArenaScope::FrameArenaScope(FrameArena* arena) noexcept
    : prev_(tls_current_arena) {
  tls_current_arena = arena;
}

FrameArenaScope::~FrameArenaScope() { tls_current_arena = prev_; }

FrameArena* FrameArenaScope::Current() noexcept { return tls_current_arena; }

namespace frame_alloc {

void* Allocate(std::size_t size) {
  const std::size_t total = kHeaderBytes + size;
  FrameArena* arena = FrameArenaScope::Current();
  void* block = arena != nullptr ? arena->Allocate(total) : ::operator new(total);
  auto* header = static_cast<FrameHeader*>(block);
  header->arena = arena;
  header->total_bytes = total;
  return static_cast<std::byte*>(block) + kHeaderBytes;
}

void Deallocate(void* p) noexcept {
  if (p == nullptr) return;
  void* block = static_cast<std::byte*>(p) - kHeaderBytes;
  const FrameHeader header = *static_cast<FrameHeader*>(block);
  if (header.arena != nullptr) {
    header.arena->Recycle(block, header.total_bytes);
  } else {
    ::operator delete(block);
  }
}

}  // namespace frame_alloc
}  // namespace emis
