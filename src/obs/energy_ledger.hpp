// Energy attribution: which (phase, level) charged each node its awake rounds.
//
// The EnergyMeter answers "how much energy did node v spend"; the
// PhaseTimeline answers "how much energy did phase p spend in total". Neither
// answers the paper's decomposition question — Banasik et al. (and the
// per-level budget of Dufoulon–Moses–Pandurangan) argue about the awake
// rounds a *node* spends *inside a phase/level* — so the ledger charges every
// awake round to a (node, phase, sub-phase) key as the scheduler executes it.
//
// Wiring: the Scheduler owns the charge calls (one per transmit/listen, right
// next to the EnergyMeter charges, so conservation is exact by construction);
// the PhaseTimeline owns the context (BindLedger makes every span open/close
// update the ledger's current key). Charges that land outside any annotated
// phase — protocols that never call NodeApi::Phase, or rounds after the last
// Close — accumulate under the empty phase label, rendered as
// "(unattributed)" in exports. Σ over keys of a node's charges therefore
// equals its EnergyMeter entry exactly, always.
//
// Exports:
//   * Table(): per-key rows with transmit/listen splits and tail percentiles
//     of the per-node awake distribution within the key — the
//     `energy_attribution` block of emis-run-report/1.
//   * WriteCollapsed(): collapsed-stack text ("root;phase;sub count" lines),
//     the input format of standard flamegraph tooling (flamegraph.pl,
//     inferno, speedscope), weighted by awake rounds.
//   * AttributionTable: the mergeable cross-trial aggregate used by sweeps;
//     integral sums only, so merging in fixed trial order is bit-stable at
//     any job count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "radio/types.hpp"

namespace emis::obs {

/// One aggregated (phase, sub-phase) row of a single run's attribution.
struct AttributionRow {
  std::string phase;  ///< level-0 label; "" = outside any annotated phase
  std::string sub;    ///< level-1 label; "" = charged at phase level
  std::uint64_t transmit_rounds = 0;
  std::uint64_t listen_rounds = 0;
  /// Nodes with at least one charge under this key.
  std::uint64_t nodes_charged = 0;
  /// Distribution of per-node awake rounds within the key (the paper's
  /// per-phase energy bounds are worst-case per node, so the tail matters).
  std::uint64_t max_awake = 0;
  std::uint64_t p50_awake = 0;
  std::uint64_t p90_awake = 0;
  std::uint64_t p99_awake = 0;
  std::uint64_t AwakeRounds() const noexcept {
    return transmit_rounds + listen_rounds;
  }
};

class EnergyLedger {
 public:
  explicit EnergyLedger(NodeId num_nodes) : nodes_(num_nodes) {}

  NodeId NumNodes() const noexcept {
    return static_cast<NodeId>(nodes_.size());
  }

  /// Context updates, driven by PhaseTimeline::BindLedger. Setting a phase
  /// clears the sub-phase (a new level-0 span closes any level-1 span);
  /// empty labels mean "no open span at this level".
  void SetPhase(std::string_view label);
  void SetSub(std::string_view label);

  /// Charge node v's awake round to the current (phase, sub) key. O(1) in
  /// the common case: phases progress monotonically per node, so the charge
  /// lands in the node's most recent cell.
  void ChargeTransmit(NodeId v) { Charge(v).tx += 1; }
  void ChargeListen(NodeId v) { Charge(v).lx += 1; }

  /// Interns the current (phase, sub) key now, on the calling thread. The
  /// sharded scheduler calls this once per round before its parallel charge
  /// passes: with the key pre-interned, concurrent Charge calls touch only
  /// the per-node cell vectors (disjoint across shards) and never the
  /// shared key table. Annotations only move between rounds (inside the
  /// serial resume pass), so the key cannot change mid-pass.
  void PrimeCurrentKey() { (void)CurrentKey(); }

  /// Per-node totals across all keys — the conservation check's left-hand
  /// side (must equal the EnergyMeter's per-node entries).
  std::uint64_t AttributedTransmit(NodeId v) const;
  std::uint64_t AttributedListen(NodeId v) const;

  /// Number of distinct keys charged so far.
  std::size_t NumKeys() const noexcept { return keys_.size(); }

  /// Aggregated rows in first-charge order (chronological for a run, and
  /// deterministic: charges happen on the single scheduler thread).
  std::vector<AttributionRow> Table() const;

  /// Collapsed-stack flamegraph lines "root;phase[;sub] awake_rounds\n",
  /// one per charged key in first-charge order; zero-weight keys are
  /// skipped. The empty phase renders as "(unattributed)".
  void WriteCollapsed(std::ostream& out, std::string_view root) const;

  void Clear();

 private:
  struct Cell {
    std::uint32_t key = 0;
    std::uint64_t tx = 0;
    std::uint64_t lx = 0;
  };

  Cell& Charge(NodeId v);
  std::uint32_t CurrentKey();

  std::string phase_;
  std::string sub_;
  bool key_valid_ = false;     ///< current_key_ matches (phase_, sub_)
  std::uint32_t current_key_ = 0;

  /// Interned (phase, sub) pairs; ids index keys_ in first-charge order.
  std::vector<std::pair<std::string, std::string>> keys_;
  std::map<std::pair<std::string, std::string>, std::uint32_t> ids_;

  /// Node-major sparse charges: nodes_[v] lists the keys v was charged
  /// under, in v's own chronological order.
  std::vector<std::vector<Cell>> nodes_;
};

/// Cross-trial attribution aggregate for sweeps. Rows are keyed sums of
/// integral fields only, so accumulating per-trial tables in (size, seed)
/// order yields bit-identical content at any job count (the PR-2 shard-and-
/// merge discipline). Per-run percentiles do not merge exactly and are
/// deliberately absent here — they live in the single-run AttributionRow.
class AttributionTable {
 public:
  struct Row {
    std::uint64_t transmit_rounds = 0;
    std::uint64_t listen_rounds = 0;
    std::uint64_t nodes_charged = 0;
    std::uint64_t max_awake = 0;  ///< max per-node awake in any one trial
    std::uint64_t trials = 0;     ///< trials that charged this key
  };
  using Key = std::pair<std::string, std::string>;  ///< (phase, sub)

  /// Folds one run's ledger into this table.
  void Accumulate(const EnergyLedger& ledger);

  /// Keyed merge; commutative over disjoint trials but always invoked in
  /// trial order by RunSweep so even max fields are order-independent.
  void MergeFrom(const AttributionTable& other);

  const std::map<Key, Row>& Rows() const noexcept { return rows_; }
  bool Empty() const noexcept { return rows_.empty(); }

  /// Canonical text rendering ("phase|sub tx lx nodes max trials" per row,
  /// key-sorted) — what the --jobs golden tests compare.
  std::string ToText() const;

 private:
  std::map<Key, Row> rows_;
};

}  // namespace emis::obs
