#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace emis::obs {
namespace {

void AppendNumber(std::string& out, double d) {
  // Integers (the common case: rounds, counts) render without a fraction so
  // reports stay diff-friendly; everything else gets shortest-roundtrip via
  // %.17g trimmed by to_chars when available.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; clamp to null (observability data, not math).
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, res.ptr);
}

void DumpTo(const JsonValue& v, std::string& out, int indent, int depth) {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.AsBool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      AppendNumber(out, v.AsNumber());
      break;
    case JsonValue::Kind::kString:
      out += '"';
      out += EscapeJson(v.AsString());
      out += '"';
      break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.Items()) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        DumpTo(item, out, indent, depth + 1);
      }
      if (!v.Items().empty()) newline(depth);
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.Entries()) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += EscapeJson(key);
        out += pretty ? "\": " : "\":";
        DumpTo(value, out, indent, depth + 1);
      }
      if (!v.Entries().empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWhitespace();
    EMIS_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    EMIS_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void Expect(char c) {
    EMIS_REQUIRE(Peek() == c, std::string("expected '") + c + "' in JSON");
    ++pos_;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return JsonValue(ParseString());
      case 't':
        EMIS_REQUIRE(ConsumeLiteral("true"), "bad JSON literal");
        return JsonValue(true);
      case 'f':
        EMIS_REQUIRE(ConsumeLiteral("false"), "bad JSON literal");
        return JsonValue(false);
      case 'n':
        EMIS_REQUIRE(ConsumeLiteral("null"), "bad JSON literal");
        return JsonValue();
      default: return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue obj = JsonValue::MakeObject();
    if (Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      EMIS_REQUIRE(Peek() == '"', "JSON object key must be a string");
      std::string key = ParseString();
      Expect(':');
      obj.Set(std::move(key), ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return obj;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue arr = JsonValue::MakeArray();
    if (Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.Push(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return arr;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      EMIS_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      EMIS_REQUIRE(pos_ < text_.size(), "unterminated JSON escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          EMIS_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          std::uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<std::uint32_t>(h - 'A' + 10);
            else EMIS_REQUIRE(false, "bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the emitters only escape control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: EMIS_REQUIRE(false, "bad JSON escape character");
      }
    }
  }

  JsonValue ParseNumber() {
    SkipWhitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    EMIS_REQUIRE(pos_ > start, "expected a JSON value");
    double value = 0.0;
    const auto res = std::from_chars(text_.data() + start, text_.data() + pos_, value);
    EMIS_REQUIRE(res.ec == std::errc() && res.ptr == text_.data() + pos_,
                 "malformed JSON number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(*this, out, indent, 0);
  return out;
}

JsonValue ParseJson(std::string_view text) { return Parser(text).Parse(); }

}  // namespace emis::obs
