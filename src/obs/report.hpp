// Run-report emission: one stable JSON document per run.
//
// The report serializes everything a perf/quality trajectory needs from a
// single run — RunStats, the EnergyMeter distribution, the PhaseTimeline and
// the MetricsRegistry — under a versioned schema ("emis-run-report/1").
// `emis_cli run --report-out FILE` and bench_common.hpp's artifact writer
// both emit through here; ValidateRunReport / ValidateBenchReport are the
// schema checks used by tests, `emis_cli validate-report` and CI.
//
// Schema emis-run-report/1 (all keys required unless noted):
//   schema   "emis-run-report/1"
//   run      {algorithm, graph, preset, seed, nodes, edges, max_degree,
//             shards (optional; cost metadata, excluded from diff gates)}
//   result   {valid_mis, mis_size, rounds, node_rounds, nodes_finished,
//             hit_round_limit}
//   energy   {max_awake, avg_awake, total_awake, total_transmit,
//             total_listen, percentiles{p10,p50,p90,p99},
//             awake_histogram{bounds[], counts[]}}
//   phases   [{label, level, begin_round, end_round, rounds,
//              transmit_rounds, listen_rounds, awake_rounds,
//              residual_edges_begin?, residual_edges_end?}]
//   energy_attribution
//            OPTIONAL (added after schema 1 shipped; older documents omit
//            it and stay valid). {total_transmit, total_listen, keys[
//            {phase, sub, transmit_rounds, listen_rounds, awake_rounds,
//             nodes_charged, max_awake, p50_awake, p90_awake, p99_awake}]}
//            — the EnergyLedger's per-(phase, level) decomposition; key
//            totals sum exactly to the energy block's totals (conservation,
//            pinned by test). The empty phase label is the unattributed
//            remainder. Gauges obs.trace_dropped / obs.telemetry_dropped in
//            the metrics block account for bounded-sink losses.
//   alloc    {arena_reserved_bytes, arena_used_bytes, peak_rss_bytes}
//   metrics  {counters{}, gauges{}, timers{name:{count,total_ns,mean_ns,
//             max_ns}}, histograms{name:{bounds[], counts[], sum}}}
//            Scheduler-fed names include the residual-compaction telemetry:
//            counters graph.compactions / graph.edges_reclaimed and the
//            gauge chan.live_edges (see SchedulerConfig::metrics).
//
// Schema emis-bench-report/1:
//   schema   "emis-bench-report/1"
//   bench    experiment id (e.g. "E1  bench_cd_energy")
//   claim    the paper claim the bench reproduces
//   failures total SHAPE-CHECK failures
//   verdicts [{what, ok}]
//   sweeps   [{title, points[{n, runs, failures, max_energy_mean,
//              avg_energy_mean, rounds_mean, mis_size_mean}]}]
//   metrics  OPTIONAL (added after schema 1 shipped; older documents omit
//            it and stay valid). Same shape as the run report's metrics
//            sub-document; sweeps merge their per-worker shards into it, so
//            scheduler counters (chan.*, graph.*, sched.*) accumulate
//            across the whole bench
//   alloc    {peak_rss_bytes}   (process-wide; arenas are per-run)
#pragma once

#include <iosfwd>
#include <string>

#include "obs/energy_ledger.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timeline.hpp"
#include "radio/energy.hpp"
#include "radio/scheduler.hpp"

namespace emis::obs {

inline constexpr std::string_view kRunReportSchema = "emis-run-report/1";
inline constexpr std::string_view kBenchReportSchema = "emis-bench-report/1";
inline constexpr std::string_view kDiffReportSchema = "emis-diff-report/1";
/// emis_lint's artifact. /2 adds pass-1 index counters (symbols_indexed,
/// call_edges), wall_seconds, per-rule waiver accounting
/// (suppressed_by_rule), and optional per-finding "symbol" and "witness"
/// call-chain arrays; /1 artifacts (pre-PR 9) still validate.
inline constexpr std::string_view kLintReportSchema = "emis-lint-report/2";
inline constexpr std::string_view kLintReportSchemaV1 = "emis-lint-report/1";

struct RunReportInputs {
  std::string algorithm;
  std::string graph;      ///< spec or file description of the topology
  std::string preset;
  std::uint64_t seed = 0;
  NodeId nodes = 0;
  std::uint64_t edges = 0;
  std::uint32_t max_degree = 0;
  /// Intra-run shard count the run executed with (run.shards; cost metadata
  /// only — reports are bit-identical across shard counts outside this key).
  unsigned shards = 1;
  bool valid_mis = false;
  std::uint64_t mis_size = 0;
  /// Allocation telemetry: the scheduler arena's footprint
  /// (MisRunResult::arena) and the process peak RSS (PeakRssBytes()).
  std::uint64_t arena_reserved_bytes = 0;
  std::uint64_t arena_used_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
  const RunStats* stats = nullptr;         ///< required
  const EnergyMeter* energy = nullptr;     ///< required
  const PhaseTimeline* timeline = nullptr; ///< optional; spans must be closed
  const MetricsRegistry* metrics = nullptr;///< optional
  const EnergyLedger* ledger = nullptr;    ///< optional energy_attribution
};

/// Builds the report document. Deterministic in the inputs (stable key and
/// span order), so emitted files are diffable across runs of the same seed.
JsonValue BuildRunReport(const RunReportInputs& inputs);

/// Serializes BuildRunReport pretty-printed with a trailing newline.
void WriteRunReport(std::ostream& out, const RunReportInputs& inputs);

/// Serializes a MetricsRegistry alone (the `metrics` sub-document).
JsonValue BuildMetricsJson(const MetricsRegistry& registry);

/// The EnergyLedger's aggregation as the `energy_attribution` sub-document.
JsonValue BuildAttributionJson(const EnergyLedger& ledger);

/// Prometheus-style text exposition of a registry: counters and gauges as
/// single samples, histograms as _bucket/_sum/_count families, timers as
/// _count/_total_ns counters. Names are mangled to `emis_<name>` with
/// non-alphanumerics folded to '_'. Deterministic (registry iteration is
/// name-ordered), so output is snapshot-testable.
void WriteMetricsText(std::ostream& out, const MetricsRegistry& registry);

/// Schema checks: empty string if the document conforms, else a description
/// of the first violation.
std::string ValidateRunReport(const JsonValue& doc);
std::string ValidateBenchReport(const JsonValue& doc);
std::string ValidateDiffReport(const JsonValue& doc);
/// Accepts both emis-lint-report/2 and the legacy /1 layout.
std::string ValidateLintReport(const JsonValue& doc);

/// Dispatches on the document's "schema" field; unknown schemas are errors.
std::string ValidateReport(const JsonValue& doc);

/// Peak resident set size of this process in bytes (Linux: VmHWM from
/// /proc/self/status; 0 on platforms without it). Monotone over the process
/// lifetime, so report emitters read it at write time.
std::uint64_t PeakRssBytes();

}  // namespace emis::obs
