// Machine-readable trace sink: one JSON object per event, newline-delimited.
//
// Sits alongside RingTrace (in-memory ring) and CsvTrace (spreadsheet rows);
// JSONL is the format trace-analysis tooling actually wants — each line is
// independently parseable, so truncated files and streamed consumption both
// work. Field set matches TraceEvent; listen events add the reception.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "radio/trace.hpp"

namespace emis::obs {

class JsonlTraceSink final : public TraceSink {
 public:
  /// The stream must outlive the sink. Nothing is written until the first
  /// event.
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  ~JsonlTraceSink() override;

  void OnEvent(const TraceEvent& event) override;

  std::uint64_t EventsWritten() const noexcept { return events_written_; }

  /// Flushes the underlying stream; also called by the destructor so files
  /// are complete without the caller remembering to flush.
  void Flush();

 private:
  std::ostream* out_;
  std::uint64_t events_written_ = 0;
};

}  // namespace emis::obs
