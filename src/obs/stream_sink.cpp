#include "obs/stream_sink.hpp"

#include <fstream>
#include <ostream>

#ifdef __linux__
#include <unistd.h>
#endif

namespace emis::obs {

void StreamSink::Emit(const JsonValue& event) { Enqueue(event, true); }

void StreamSink::EmitControl(const JsonValue& event) { Enqueue(event, false); }

void StreamSink::Enqueue(const JsonValue& event, bool bounded) {
  if (bounded && queue_.size() >= config_.max_queued_events) {
    ++dropped_;
    return;
  }
  std::string line = event.Dump(-1);
  line += '\n';
  queue_.push_back(std::move(line));
  ++emitted_;
}

void StreamSink::DrainTo(std::ostream& out) {
  for (const std::string& line : queue_) out << line;
  queue_.clear();
  out.flush();
}

std::string StreamSink::DrainToString() {
  std::string blob;
  std::size_t total = 0;
  for (const std::string& line : queue_) total += line.size();
  blob.reserve(total);
  for (const std::string& line : queue_) blob += line;
  queue_.clear();
  return blob;
}

void StreamSink::Clear() {
  queue_.clear();
  emitted_ = 0;
  dropped_ = 0;
}

namespace {

#ifdef __linux__
/// Unbuffered streambuf over an inherited file descriptor. Writes go
/// straight through ::write; the descriptor is not closed on destruction
/// (the parent process owns it).
class FdStreamBuf final : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {}

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return 0;
    const char c = static_cast<char>(ch);
    return WriteAll(&c, 1) ? ch : traits_type::eof();
  }
  std::streamsize xsputn(const char* data, std::streamsize count) override {
    return WriteAll(data, static_cast<std::size_t>(count)) ? count : 0;
  }

 private:
  bool WriteAll(const char* data, std::size_t count) {
    while (count > 0) {
      const ssize_t n = ::write(fd_, data, count);
      if (n <= 0) return false;
      data += n;
      count -= static_cast<std::size_t>(n);
    }
    return true;
  }
  int fd_;
};

/// Owns the FdStreamBuf alongside the ostream so a single unique_ptr
/// keeps both alive.
class FdOStream final : public std::ostream {
 public:
  explicit FdOStream(int fd) : std::ostream(&buf_), buf_(fd) {}

 private:
  FdStreamBuf buf_;
};
#endif  // __linux__

}  // namespace

std::unique_ptr<std::ostream> OpenTelemetryStream(const std::string& spec) {
  EMIS_REQUIRE(!spec.empty(), "telemetry destination must not be empty");
  if (spec.rfind("fd:", 0) == 0) {
#ifdef __linux__
    std::size_t parsed = 0;
    int fd = -1;
    try {
      fd = std::stoi(spec.substr(3), &parsed);
    } catch (const std::exception&) {
      fd = -1;
    }
    EMIS_REQUIRE(fd >= 0 && parsed == spec.size() - 3,
                 "bad telemetry fd spec '" + spec + "' (want fd:N)");
    return std::make_unique<FdOStream>(fd);
#else
    EMIS_REQUIRE(false, "fd: telemetry destinations need POSIX write()");
#endif
  }
  auto file = std::make_unique<std::ofstream>(spec);
  EMIS_REQUIRE(file->good(), "cannot write telemetry file '" + spec + "'");
  return file;
}

}  // namespace emis::obs
