#include "obs/energy_ledger.hpp"

#include <algorithm>
#include <ostream>

#include "core/contracts.hpp"

namespace emis::obs {
namespace {

/// Same nearest-rank convention as EnergyMeter::PercentileAwake, so the
/// report's per-key percentiles are comparable with the run-level ones.
std::uint64_t Percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

void EnergyLedger::SetPhase(std::string_view label) {
  if (phase_ == label && sub_.empty()) return;
  phase_.assign(label);
  sub_.clear();
  key_valid_ = false;
}

void EnergyLedger::SetSub(std::string_view label) {
  if (sub_ == label) return;
  sub_.assign(label);
  key_valid_ = false;
}

std::uint32_t EnergyLedger::CurrentKey() {
  if (!key_valid_) {
    const auto key = std::make_pair(phase_, sub_);
    const auto [it, inserted] =
        ids_.emplace(key, static_cast<std::uint32_t>(keys_.size()));
    if (inserted) keys_.push_back(key);
    current_key_ = it->second;
    key_valid_ = true;
  }
  return current_key_;
}

EnergyLedger::Cell& EnergyLedger::Charge(NodeId v) {
  EMIS_EXPECTS(v < nodes_.size(), "ledger charge for out-of-range node");
  const std::uint32_t key = CurrentKey();
  std::vector<Cell>& cells = nodes_[v];
  // Phases progress forward in time for every node, so a revisit of an older
  // key (e.g. the unattributed key between phases) is rare; the linear case
  // is "same key as my last charge".
  if (cells.empty() || cells.back().key != key) {
    cells.push_back(Cell{key, 0, 0});
  }
  return cells.back();
}

std::uint64_t EnergyLedger::AttributedTransmit(NodeId v) const {
  EMIS_EXPECTS(v < nodes_.size(), "node out of range");
  std::uint64_t total = 0;
  for (const Cell& c : nodes_[v]) total += c.tx;
  return total;
}

std::uint64_t EnergyLedger::AttributedListen(NodeId v) const {
  EMIS_EXPECTS(v < nodes_.size(), "node out of range");
  std::uint64_t total = 0;
  for (const Cell& c : nodes_[v]) total += c.lx;
  return total;
}

std::vector<AttributionRow> EnergyLedger::Table() const {
  struct PerKey {
    std::uint64_t tx = 0;
    std::uint64_t lx = 0;
    std::vector<std::uint64_t> node_awake;
  };
  std::vector<PerKey> agg(keys_.size());
  // A node may be charged under one key in several separate stints (e.g.
  // returning to the unattributed key between phases); fold its stints
  // before the distribution is taken.
  std::vector<std::uint64_t> node_totals(keys_.size());
  for (const std::vector<Cell>& cells : nodes_) {
    std::fill(node_totals.begin(), node_totals.end(), 0);
    for (const Cell& c : cells) {
      agg[c.key].tx += c.tx;
      agg[c.key].lx += c.lx;
      node_totals[c.key] += c.tx + c.lx;
    }
    for (const Cell& c : cells) {
      if (node_totals[c.key] > 0) {
        agg[c.key].node_awake.push_back(node_totals[c.key]);
        node_totals[c.key] = 0;  // push each key once per node
      }
    }
  }
  std::vector<AttributionRow> rows;
  rows.reserve(keys_.size());
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    AttributionRow row;
    row.phase = keys_[k].first;
    row.sub = keys_[k].second;
    row.transmit_rounds = agg[k].tx;
    row.listen_rounds = agg[k].lx;
    row.nodes_charged = agg[k].node_awake.size();
    std::sort(agg[k].node_awake.begin(), agg[k].node_awake.end());
    if (!agg[k].node_awake.empty()) {
      row.max_awake = agg[k].node_awake.back();
      row.p50_awake = Percentile(agg[k].node_awake, 50);
      row.p90_awake = Percentile(agg[k].node_awake, 90);
      row.p99_awake = Percentile(agg[k].node_awake, 99);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void EnergyLedger::WriteCollapsed(std::ostream& out,
                                  std::string_view root) const {
  for (const AttributionRow& row : Table()) {
    const std::uint64_t weight = row.AwakeRounds();
    if (weight == 0) continue;
    if (!root.empty()) out << root << ';';
    out << (row.phase.empty() ? std::string_view("(unattributed)")
                              : std::string_view(row.phase));
    if (!row.sub.empty()) out << ';' << row.sub;
    out << ' ' << weight << '\n';
  }
}

void EnergyLedger::Clear() {
  phase_.clear();
  sub_.clear();
  key_valid_ = false;
  keys_.clear();
  ids_.clear();
  for (std::vector<Cell>& cells : nodes_) cells.clear();
}

void AttributionTable::Accumulate(const EnergyLedger& ledger) {
  for (const AttributionRow& r : ledger.Table()) {
    if (r.AwakeRounds() == 0 && r.nodes_charged == 0) continue;
    Row& row = rows_[Key(r.phase, r.sub)];
    row.transmit_rounds += r.transmit_rounds;
    row.listen_rounds += r.listen_rounds;
    row.nodes_charged += r.nodes_charged;
    row.max_awake = std::max(row.max_awake, r.max_awake);
    row.trials += 1;
  }
}

void AttributionTable::MergeFrom(const AttributionTable& other) {
  for (const auto& [key, r] : other.rows_) {
    Row& row = rows_[key];
    row.transmit_rounds += r.transmit_rounds;
    row.listen_rounds += r.listen_rounds;
    row.nodes_charged += r.nodes_charged;
    row.max_awake = std::max(row.max_awake, r.max_awake);
    row.trials += r.trials;
  }
}

std::string AttributionTable::ToText() const {
  std::string out;
  for (const auto& [key, r] : rows_) {
    out += key.first.empty() ? "(unattributed)" : key.first;
    out += '|';
    out += key.second;
    out += ' ';
    out += std::to_string(r.transmit_rounds);
    out += ' ';
    out += std::to_string(r.listen_rounds);
    out += ' ';
    out += std::to_string(r.nodes_charged);
    out += ' ';
    out += std::to_string(r.max_awake);
    out += ' ';
    out += std::to_string(r.trials);
    out += '\n';
  }
  return out;
}

}  // namespace emis::obs
