#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace emis::obs {
namespace {

JsonValue HistogramJson(const Histogram& h) {
  JsonValue bounds = JsonValue::MakeArray();
  JsonValue counts = JsonValue::MakeArray();
  for (std::size_t i = 0; i < h.NumBuckets(); ++i) {
    // The final (overflow) bucket has an infinite bound; JSON cannot carry
    // infinity, so it is implied by counts being one longer than bounds.
    if (i + 1 < h.NumBuckets()) bounds.Push(JsonValue(h.UpperBound(i)));
    counts.Push(JsonValue(h.BucketCount(i)));
  }
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("bounds", std::move(bounds));
  obj.Set("counts", std::move(counts));
  obj.Set("sum", JsonValue(h.Sum()));
  return obj;
}

JsonValue EnergyJson(const EnergyMeter& energy) {
  JsonValue e = JsonValue::MakeObject();
  e.Set("max_awake", JsonValue(energy.MaxAwake()));
  e.Set("avg_awake", JsonValue(energy.AverageAwake()));
  e.Set("total_awake", JsonValue(energy.TotalAwake()));
  e.Set("total_transmit", JsonValue(energy.TotalTransmit()));
  e.Set("total_listen", JsonValue(energy.TotalListen()));
  JsonValue pct = JsonValue::MakeObject();
  pct.Set("p10", JsonValue(energy.PercentileAwake(10)));
  pct.Set("p50", JsonValue(energy.PercentileAwake(50)));
  pct.Set("p90", JsonValue(energy.PercentileAwake(90)));
  pct.Set("p99", JsonValue(energy.PercentileAwake(99)));
  e.Set("percentiles", std::move(pct));
  // Per-node awake distribution in power-of-two buckets: enough resolution
  // to separate O(log n) from O(log² n) profiles at any practical n.
  Histogram awake(Histogram::ExponentialBounds(1.0, 2.0, 20));
  for (NodeId v = 0; v < energy.NumNodes(); ++v) {
    awake.Observe(static_cast<double>(energy.Of(v).Awake()));
  }
  e.Set("awake_histogram", HistogramJson(awake));
  return e;
}

JsonValue PhasesJson(const PhaseTimeline& timeline) {
  // Report order: by begin round, phases before their sub-phases, stable for
  // ties — reads as a chronological timeline regardless of close order.
  std::vector<const PhaseSpan*> spans;
  spans.reserve(timeline.Spans().size());
  for (const PhaseSpan& s : timeline.Spans()) spans.push_back(&s);
  std::stable_sort(spans.begin(), spans.end(),
                   [](const PhaseSpan* a, const PhaseSpan* b) {
                     if (a->begin_round != b->begin_round) {
                       return a->begin_round < b->begin_round;
                     }
                     return a->level < b->level;
                   });
  JsonValue arr = JsonValue::MakeArray();
  for (const PhaseSpan* s : spans) {
    JsonValue p = JsonValue::MakeObject();
    p.Set("label", JsonValue(s->label));
    p.Set("level", JsonValue(static_cast<std::uint64_t>(s->level)));
    p.Set("begin_round", JsonValue(s->begin_round));
    p.Set("end_round", JsonValue(s->end_round));
    p.Set("rounds", JsonValue(s->Rounds()));
    p.Set("transmit_rounds", JsonValue(s->transmit_rounds));
    p.Set("listen_rounds", JsonValue(s->listen_rounds));
    p.Set("awake_rounds", JsonValue(s->AwakeRounds()));
    if (s->has_residual) {
      p.Set("residual_edges_begin", JsonValue(s->residual_edges_begin));
      p.Set("residual_edges_end", JsonValue(s->residual_edges_end));
    }
    arr.Push(std::move(p));
  }
  return arr;
}

/// Prometheus metric-name mangling: `emis_` prefix, non-alphanumerics
/// folded to '_' ("chan.live_edges" -> "emis_chan_live_edges").
std::string PromName(std::string_view name) {
  std::string out = "emis_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

/// Exposition value formatting: integral values print without a fraction so
/// counters stay exact; everything else uses max round-trip precision.
std::string PromValue(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v >= -9.2e18 && v <= 9.2e18) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// --- validation helpers ----------------------------------------------------

std::string KindName(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

/// Returns the value at `path`.`key` if present with the right kind, else
/// writes an error into *err and returns nullptr.
const JsonValue* Need(const JsonValue& obj, std::string_view key,
                      JsonValue::Kind kind, const std::string& path,
                      std::string* err) {
  if (!err->empty()) return nullptr;
  const JsonValue* v = obj.Find(key);
  if (v == nullptr) {
    *err = path + "." + std::string(key) + ": missing";
    return nullptr;
  }
  if (v->kind() != kind) {
    *err = path + "." + std::string(key) + ": expected " + KindName(kind) +
           ", got " + KindName(v->kind());
    return nullptr;
  }
  return v;
}

void NeedKeys(const JsonValue& obj, const std::string& path,
              std::initializer_list<std::pair<const char*, JsonValue::Kind>> keys,
              std::string* err) {
  for (const auto& [key, kind] : keys) {
    Need(obj, key, kind, path, err);
    if (!err->empty()) return;
  }
}

std::string CheckHistogramObject(const JsonValue& h, const std::string& path) {
  std::string err;
  const JsonValue* bounds = Need(h, "bounds", JsonValue::Kind::kArray, path, &err);
  const JsonValue* counts = Need(h, "counts", JsonValue::Kind::kArray, path, &err);
  if (!err.empty()) return err;
  if (counts->Items().size() != bounds->Items().size() + 1) {
    return path + ": counts must have exactly one more entry than bounds";
  }
  return "";
}

}  // namespace

JsonValue BuildMetricsJson(const MetricsRegistry& registry) {
  JsonValue m = JsonValue::MakeObject();
  JsonValue counters = JsonValue::MakeObject();
  for (const auto& [name, c] : registry.Counters()) {
    counters.Set(name, JsonValue(c.Value()));
  }
  m.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::MakeObject();
  for (const auto& [name, g] : registry.Gauges()) {
    gauges.Set(name, JsonValue(g.Value()));
  }
  m.Set("gauges", std::move(gauges));
  JsonValue timers = JsonValue::MakeObject();
  for (const auto& [name, t] : registry.Timers()) {
    JsonValue tj = JsonValue::MakeObject();
    tj.Set("count", JsonValue(t.Count()));
    tj.Set("total_ns", JsonValue(t.TotalNs()));
    tj.Set("mean_ns", JsonValue(t.MeanNs()));
    tj.Set("max_ns", JsonValue(t.MaxNs()));
    timers.Set(name, std::move(tj));
  }
  m.Set("timers", std::move(timers));
  JsonValue histograms = JsonValue::MakeObject();
  for (const auto& [name, h] : registry.Histograms()) {
    histograms.Set(name, HistogramJson(h));
  }
  m.Set("histograms", std::move(histograms));
  return m;
}

JsonValue BuildAttributionJson(const EnergyLedger& ledger) {
  JsonValue doc = JsonValue::MakeObject();
  std::uint64_t total_tx = 0;
  std::uint64_t total_lx = 0;
  JsonValue keys = JsonValue::MakeArray();
  for (const AttributionRow& row : ledger.Table()) {
    total_tx += row.transmit_rounds;
    total_lx += row.listen_rounds;
    JsonValue k = JsonValue::MakeObject();
    k.Set("phase", JsonValue(row.phase));
    k.Set("sub", JsonValue(row.sub));
    k.Set("transmit_rounds", JsonValue(row.transmit_rounds));
    k.Set("listen_rounds", JsonValue(row.listen_rounds));
    k.Set("awake_rounds", JsonValue(row.AwakeRounds()));
    k.Set("nodes_charged", JsonValue(row.nodes_charged));
    k.Set("max_awake", JsonValue(row.max_awake));
    k.Set("p50_awake", JsonValue(row.p50_awake));
    k.Set("p90_awake", JsonValue(row.p90_awake));
    k.Set("p99_awake", JsonValue(row.p99_awake));
    keys.Push(std::move(k));
  }
  // Ledger charges mirror the EnergyMeter's exactly, so these totals equal
  // the energy block's total_transmit/total_listen (conservation).
  doc.Set("total_transmit", JsonValue(total_tx));
  doc.Set("total_listen", JsonValue(total_lx));
  doc.Set("keys", std::move(keys));
  return doc;
}

void WriteMetricsText(std::ostream& out, const MetricsRegistry& registry) {
  for (const auto& [name, c] : registry.Counters()) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " counter\n"
        << prom << ' ' << c.Value() << '\n';
  }
  for (const auto& [name, g] : registry.Gauges()) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " gauge\n"
        << prom << ' ' << PromValue(g.Value()) << '\n';
  }
  for (const auto& [name, h] : registry.Histograms()) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.NumBuckets(); ++i) {
      cumulative += h.BucketCount(i);
      out << prom << "_bucket{le=\"";
      if (i + 1 < h.NumBuckets()) {
        out << PromValue(h.UpperBound(i));
      } else {
        out << "+Inf";
      }
      out << "\"} " << cumulative << '\n';
    }
    out << prom << "_sum " << PromValue(h.Sum()) << '\n'
        << prom << "_count " << cumulative << '\n';
  }
  // Timers expose deterministic event counts plus wall-clock totals; the
  // latter vary run to run, which is fine for scrape-style consumers.
  for (const auto& [name, t] : registry.Timers()) {
    const std::string prom = PromName(name);
    out << "# TYPE " << prom << "_count counter\n"
        << prom << "_count " << t.Count() << '\n'
        << "# TYPE " << prom << "_total_ns counter\n"
        << prom << "_total_ns " << t.TotalNs() << '\n';
  }
}

JsonValue BuildRunReport(const RunReportInputs& inputs) {
  EMIS_REQUIRE(inputs.stats != nullptr && inputs.energy != nullptr,
               "run report needs stats and energy");
  JsonValue doc = JsonValue::MakeObject();
  doc.Set("schema", JsonValue(kRunReportSchema));

  JsonValue run = JsonValue::MakeObject();
  run.Set("algorithm", JsonValue(inputs.algorithm));
  run.Set("graph", JsonValue(inputs.graph));
  run.Set("preset", JsonValue(inputs.preset));
  run.Set("seed", JsonValue(inputs.seed));
  run.Set("nodes", JsonValue(static_cast<std::uint64_t>(inputs.nodes)));
  run.Set("edges", JsonValue(inputs.edges));
  run.Set("max_degree", JsonValue(static_cast<std::uint64_t>(inputs.max_degree)));
  run.Set("shards", JsonValue(static_cast<std::uint64_t>(inputs.shards)));
  doc.Set("run", std::move(run));

  JsonValue result = JsonValue::MakeObject();
  result.Set("valid_mis", JsonValue(inputs.valid_mis));
  result.Set("mis_size", JsonValue(inputs.mis_size));
  result.Set("rounds", JsonValue(inputs.stats->rounds_used));
  result.Set("node_rounds", JsonValue(inputs.stats->node_rounds));
  result.Set("nodes_finished",
             JsonValue(static_cast<std::uint64_t>(inputs.stats->nodes_finished)));
  result.Set("hit_round_limit", JsonValue(inputs.stats->hit_round_limit));
  doc.Set("result", std::move(result));

  doc.Set("energy", EnergyJson(*inputs.energy));
  doc.Set("phases", inputs.timeline != nullptr ? PhasesJson(*inputs.timeline)
                                               : JsonValue::MakeArray());
  // Optional (post-schema-1) block: older consumers that ignore unknown
  // keys keep working, and documents without it stay valid.
  if (inputs.ledger != nullptr) {
    doc.Set("energy_attribution", BuildAttributionJson(*inputs.ledger));
  }

  JsonValue alloc = JsonValue::MakeObject();
  alloc.Set("arena_reserved_bytes", JsonValue(inputs.arena_reserved_bytes));
  alloc.Set("arena_used_bytes", JsonValue(inputs.arena_used_bytes));
  alloc.Set("peak_rss_bytes", JsonValue(inputs.peak_rss_bytes));
  doc.Set("alloc", std::move(alloc));

  doc.Set("metrics", inputs.metrics != nullptr ? BuildMetricsJson(*inputs.metrics)
                                               : BuildMetricsJson(MetricsRegistry{}));
  return doc;
}

void WriteRunReport(std::ostream& out, const RunReportInputs& inputs) {
  out << BuildRunReport(inputs).Dump(2) << '\n';
}

std::string ValidateRunReport(const JsonValue& doc) {
  if (!doc.IsObject()) return "report: not a JSON object";
  std::string err;
  const JsonValue* schema =
      Need(doc, "schema", JsonValue::Kind::kString, "report", &err);
  if (!err.empty()) return err;
  if (schema->AsString() != kRunReportSchema) {
    return "report.schema: expected \"" + std::string(kRunReportSchema) + "\"";
  }

  const JsonValue* run = Need(doc, "run", JsonValue::Kind::kObject, "report", &err);
  if (run != nullptr) {
    NeedKeys(*run, "run",
             {{"algorithm", JsonValue::Kind::kString},
              {"graph", JsonValue::Kind::kString},
              {"preset", JsonValue::Kind::kString},
              {"seed", JsonValue::Kind::kNumber},
              {"nodes", JsonValue::Kind::kNumber},
              {"edges", JsonValue::Kind::kNumber},
              {"max_degree", JsonValue::Kind::kNumber}},
             &err);
  }

  const JsonValue* result =
      Need(doc, "result", JsonValue::Kind::kObject, "report", &err);
  if (result != nullptr) {
    NeedKeys(*result, "result",
             {{"valid_mis", JsonValue::Kind::kBool},
              {"mis_size", JsonValue::Kind::kNumber},
              {"rounds", JsonValue::Kind::kNumber},
              {"node_rounds", JsonValue::Kind::kNumber},
              {"nodes_finished", JsonValue::Kind::kNumber},
              {"hit_round_limit", JsonValue::Kind::kBool}},
             &err);
  }

  const JsonValue* energy =
      Need(doc, "energy", JsonValue::Kind::kObject, "report", &err);
  if (energy != nullptr) {
    NeedKeys(*energy, "energy",
             {{"max_awake", JsonValue::Kind::kNumber},
              {"avg_awake", JsonValue::Kind::kNumber},
              {"total_awake", JsonValue::Kind::kNumber},
              {"total_transmit", JsonValue::Kind::kNumber},
              {"total_listen", JsonValue::Kind::kNumber},
              {"percentiles", JsonValue::Kind::kObject},
              {"awake_histogram", JsonValue::Kind::kObject}},
             &err);
    if (err.empty()) {
      err = CheckHistogramObject(*energy->Find("awake_histogram"),
                                 "energy.awake_histogram");
    }
  }

  const JsonValue* phases =
      Need(doc, "phases", JsonValue::Kind::kArray, "report", &err);
  if (phases != nullptr && err.empty()) {
    std::size_t i = 0;
    for (const JsonValue& p : phases->Items()) {
      const std::string path = "phases[" + std::to_string(i) + "]";
      if (!p.IsObject()) return path + ": not an object";
      NeedKeys(p, path,
               {{"label", JsonValue::Kind::kString},
                {"level", JsonValue::Kind::kNumber},
                {"begin_round", JsonValue::Kind::kNumber},
                {"end_round", JsonValue::Kind::kNumber},
                {"rounds", JsonValue::Kind::kNumber},
                {"transmit_rounds", JsonValue::Kind::kNumber},
                {"listen_rounds", JsonValue::Kind::kNumber},
                {"awake_rounds", JsonValue::Kind::kNumber}},
               &err);
      if (!err.empty()) return err;
      ++i;
    }
  }

  // "energy_attribution" joined the run report after schema 1 shipped, so
  // it stays optional under the unchanged schema id; when present its shape
  // must conform.
  const JsonValue* attribution = doc.Find("energy_attribution");
  if (attribution != nullptr && err.empty()) {
    if (!attribution->IsObject()) {
      return "report.energy_attribution: expected object, got " +
             KindName(attribution->kind());
    }
    NeedKeys(*attribution, "energy_attribution",
             {{"total_transmit", JsonValue::Kind::kNumber},
              {"total_listen", JsonValue::Kind::kNumber},
              {"keys", JsonValue::Kind::kArray}},
             &err);
    if (!err.empty()) return err;
    std::size_t i = 0;
    for (const JsonValue& k : attribution->Find("keys")->Items()) {
      const std::string path = "energy_attribution.keys[" + std::to_string(i) + "]";
      if (!k.IsObject()) return path + ": not an object";
      NeedKeys(k, path,
               {{"phase", JsonValue::Kind::kString},
                {"sub", JsonValue::Kind::kString},
                {"transmit_rounds", JsonValue::Kind::kNumber},
                {"listen_rounds", JsonValue::Kind::kNumber},
                {"awake_rounds", JsonValue::Kind::kNumber},
                {"nodes_charged", JsonValue::Kind::kNumber},
                {"max_awake", JsonValue::Kind::kNumber},
                {"p50_awake", JsonValue::Kind::kNumber},
                {"p90_awake", JsonValue::Kind::kNumber},
                {"p99_awake", JsonValue::Kind::kNumber}},
               &err);
      if (!err.empty()) return err;
      ++i;
    }
  }

  const JsonValue* alloc =
      Need(doc, "alloc", JsonValue::Kind::kObject, "report", &err);
  if (alloc != nullptr) {
    NeedKeys(*alloc, "alloc",
             {{"arena_reserved_bytes", JsonValue::Kind::kNumber},
              {"arena_used_bytes", JsonValue::Kind::kNumber},
              {"peak_rss_bytes", JsonValue::Kind::kNumber}},
             &err);
  }

  const JsonValue* metrics =
      Need(doc, "metrics", JsonValue::Kind::kObject, "report", &err);
  if (metrics != nullptr) {
    NeedKeys(*metrics, "metrics",
             {{"counters", JsonValue::Kind::kObject},
              {"gauges", JsonValue::Kind::kObject},
              {"timers", JsonValue::Kind::kObject},
              {"histograms", JsonValue::Kind::kObject}},
             &err);
  }
  return err;
}

std::string ValidateBenchReport(const JsonValue& doc) {
  if (!doc.IsObject()) return "report: not a JSON object";
  std::string err;
  const JsonValue* schema =
      Need(doc, "schema", JsonValue::Kind::kString, "report", &err);
  if (!err.empty()) return err;
  if (schema->AsString() != kBenchReportSchema) {
    return "report.schema: expected \"" + std::string(kBenchReportSchema) + "\"";
  }
  NeedKeys(doc, "report",
           {{"bench", JsonValue::Kind::kString},
            {"claim", JsonValue::Kind::kString},
            {"failures", JsonValue::Kind::kNumber},
            {"verdicts", JsonValue::Kind::kArray},
            {"sweeps", JsonValue::Kind::kArray}},
           &err);
  if (!err.empty()) return err;
  // "metrics" joined the bench report after schema 1 shipped, so it stays
  // optional under the unchanged schema id: documents from older binaries
  // (no metrics block) remain valid, and when the block is present its
  // shape must conform.
  const JsonValue* metrics = doc.Find("metrics");
  if (metrics != nullptr) {
    if (!metrics->IsObject()) {
      return "report.metrics: expected object, got " + KindName(metrics->kind());
    }
    NeedKeys(*metrics, "metrics",
             {{"counters", JsonValue::Kind::kObject},
              {"gauges", JsonValue::Kind::kObject},
              {"timers", JsonValue::Kind::kObject},
              {"histograms", JsonValue::Kind::kObject}},
             &err);
    if (!err.empty()) return err;
  }
  std::size_t i = 0;
  for (const JsonValue& v : doc.Find("verdicts")->Items()) {
    const std::string path = "verdicts[" + std::to_string(i) + "]";
    if (!v.IsObject()) return path + ": not an object";
    NeedKeys(v, path,
             {{"what", JsonValue::Kind::kString}, {"ok", JsonValue::Kind::kBool}},
             &err);
    if (!err.empty()) return err;
    ++i;
  }
  i = 0;
  for (const JsonValue& s : doc.Find("sweeps")->Items()) {
    const std::string path = "sweeps[" + std::to_string(i) + "]";
    if (!s.IsObject()) return path + ": not an object";
    NeedKeys(s, path,
             {{"title", JsonValue::Kind::kString},
              {"points", JsonValue::Kind::kArray}},
             &err);
    if (!err.empty()) return err;
    std::size_t j = 0;
    for (const JsonValue& p : s.Find("points")->Items()) {
      const std::string ppath = path + ".points[" + std::to_string(j) + "]";
      if (!p.IsObject()) return ppath + ": not an object";
      NeedKeys(p, ppath,
               {{"n", JsonValue::Kind::kNumber},
                {"runs", JsonValue::Kind::kNumber},
                {"failures", JsonValue::Kind::kNumber},
                {"max_energy_mean", JsonValue::Kind::kNumber},
                {"avg_energy_mean", JsonValue::Kind::kNumber},
                {"rounds_mean", JsonValue::Kind::kNumber},
                {"mis_size_mean", JsonValue::Kind::kNumber}},
               &err);
      if (!err.empty()) return err;
      ++j;
    }
    ++i;
  }
  const JsonValue* alloc =
      Need(doc, "alloc", JsonValue::Kind::kObject, "report", &err);
  if (alloc != nullptr) {
    NeedKeys(*alloc, "alloc", {{"peak_rss_bytes", JsonValue::Kind::kNumber}},
             &err);
  }
  return err;
}

std::string ValidateDiffReport(const JsonValue& doc) {
  if (!doc.IsObject()) return "report: not a JSON object";
  std::string err;
  const JsonValue* schema =
      Need(doc, "schema", JsonValue::Kind::kString, "report", &err);
  if (!err.empty()) return err;
  if (schema->AsString() != kDiffReportSchema) {
    return "report.schema: expected \"" + std::string(kDiffReportSchema) + "\"";
  }
  NeedKeys(doc, "report",
           {{"baseline", JsonValue::Kind::kString},
            {"current", JsonValue::Kind::kString},
            {"compared", JsonValue::Kind::kNumber},
            {"out_of_tolerance", JsonValue::Kind::kNumber},
            {"deltas", JsonValue::Kind::kArray}},
           &err);
  if (!err.empty()) return err;
  std::size_t i = 0;
  for (const JsonValue& d : doc.Find("deltas")->Items()) {
    const std::string path = "deltas[" + std::to_string(i) + "]";
    if (!d.IsObject()) return path + ": not an object";
    NeedKeys(d, path,
             {{"metric", JsonValue::Kind::kString},
              {"class", JsonValue::Kind::kString}},
             &err);
    if (!err.empty()) return err;
    ++i;
  }
  return err;
}

std::string ValidateLintReport(const JsonValue& doc) {
  if (!doc.IsObject()) return "report: not a JSON object";
  std::string err;
  const JsonValue* schema =
      Need(doc, "schema", JsonValue::Kind::kString, "report", &err);
  if (!err.empty()) return err;
  const bool v2 = schema->AsString() == kLintReportSchema;
  if (!v2 && schema->AsString() != kLintReportSchemaV1) {
    return "report.schema: expected \"" + std::string(kLintReportSchema) +
           "\" or \"" + std::string(kLintReportSchemaV1) + "\"";
  }
  NeedKeys(doc, "report",
           {{"root", JsonValue::Kind::kString},
            {"files_scanned", JsonValue::Kind::kNumber},
            {"suppressed_count", JsonValue::Kind::kNumber},
            {"rules", JsonValue::Kind::kArray},
            {"findings", JsonValue::Kind::kArray}},
           &err);
  if (!err.empty()) return err;
  if (v2) {
    // /2 additions: pass-1 index counters, lint wall time, and per-rule
    // waiver accounting (values must be numbers).
    NeedKeys(doc, "report",
             {{"symbols_indexed", JsonValue::Kind::kNumber},
              {"call_edges", JsonValue::Kind::kNumber},
              {"wall_seconds", JsonValue::Kind::kNumber},
              {"suppressed_by_rule", JsonValue::Kind::kObject}},
             &err);
    if (!err.empty()) return err;
    for (const auto& [rule, count] : doc.Find("suppressed_by_rule")->Entries()) {
      if (!count.IsNumber()) {
        return "report.suppressed_by_rule[\"" + rule + "\"]: not a number";
      }
    }
  }
  std::size_t i = 0;
  for (const JsonValue& r : doc.Find("rules")->Items()) {
    if (!r.IsString()) {
      return "report.rules[" + std::to_string(i) + "]: not a string";
    }
    ++i;
  }
  i = 0;
  for (const JsonValue& f : doc.Find("findings")->Items()) {
    const std::string path = "findings[" + std::to_string(i) + "]";
    if (!f.IsObject()) return path + ": not an object";
    NeedKeys(f, path,
             {{"rule", JsonValue::Kind::kString},
              {"file", JsonValue::Kind::kString},
              {"line", JsonValue::Kind::kNumber},
              {"message", JsonValue::Kind::kString}},
             &err);
    if (!err.empty()) return err;
    // Graph-rule findings carry a symbol and a witness call chain; token
    // findings omit both (optional in /2, absent in /1).
    const JsonValue* symbol = f.Find("symbol");
    if (symbol != nullptr && !symbol->IsString()) {
      return path + ".symbol: expected string, got " + KindName(symbol->kind());
    }
    const JsonValue* witness = f.Find("witness");
    if (witness != nullptr) {
      if (!witness->IsArray()) {
        return path + ".witness: expected array, got " + KindName(witness->kind());
      }
      std::size_t w = 0;
      for (const JsonValue& hop : witness->Items()) {
        if (!hop.IsString()) {
          return path + ".witness[" + std::to_string(w) + "]: not a string";
        }
        ++w;
      }
    }
    ++i;
  }
  return err;
}

std::string ValidateReport(const JsonValue& doc) {
  if (!doc.IsObject()) return "report: not a JSON object";
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->IsString()) {
    return "report.schema: missing or not a string";
  }
  if (schema->AsString() == kRunReportSchema) return ValidateRunReport(doc);
  if (schema->AsString() == kBenchReportSchema) return ValidateBenchReport(doc);
  if (schema->AsString() == kDiffReportSchema) return ValidateDiffReport(doc);
  if (schema->AsString() == kLintReportSchema ||
      schema->AsString() == kLintReportSchemaV1) {
    return ValidateLintReport(doc);
  }
  return "report.schema: unknown schema \"" + schema->AsString() + "\"";
}

std::uint64_t PeakRssBytes() {
#ifdef __linux__
  // VmHWM ("high water mark") is the peak resident set, reported in kB.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    std::uint64_t kb = 0;
    fields >> kb;
    return kb * 1024;
  }
#endif
  return 0;
}

}  // namespace emis::obs
