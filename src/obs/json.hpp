// Minimal JSON document model used by the observability layer.
//
// The run-report and bench-artifact schemas (obs/report.hpp) need a writer
// with correct string escaping and deterministic key order, and the schema
// validators need a parser; both are small enough that carrying a third-party
// dependency would cost more than these ~300 lines. Objects preserve
// insertion order so emitted reports are byte-stable for a given run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "radio/types.hpp"

namespace emis::obs {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Ordered key/value pairs; duplicate keys are not rejected but Find
  /// returns the first match.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}              // NOLINT
  JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}        // NOLINT
  JsonValue(std::uint64_t u)                                       // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(u)) {}
  JsonValue(std::int64_t i)                                        // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(int i) : kind_(Kind::kNumber), number_(i) {}           // NOLINT
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(std::string_view s) : kind_(Kind::kString), string_(s) {}        // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}             // NOLINT

  static JsonValue MakeArray() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const noexcept { return kind_; }
  bool IsNull() const noexcept { return kind_ == Kind::kNull; }
  bool IsBool() const noexcept { return kind_ == Kind::kBool; }
  bool IsNumber() const noexcept { return kind_ == Kind::kNumber; }
  bool IsString() const noexcept { return kind_ == Kind::kString; }
  bool IsArray() const noexcept { return kind_ == Kind::kArray; }
  bool IsObject() const noexcept { return kind_ == Kind::kObject; }

  bool AsBool() const {
    EMIS_REQUIRE(IsBool(), "JSON value is not a bool");
    return bool_;
  }
  double AsNumber() const {
    EMIS_REQUIRE(IsNumber(), "JSON value is not a number");
    return number_;
  }
  const std::string& AsString() const {
    EMIS_REQUIRE(IsString(), "JSON value is not a string");
    return string_;
  }
  const Array& Items() const {
    EMIS_REQUIRE(IsArray(), "JSON value is not an array");
    return array_;
  }
  const Object& Entries() const {
    EMIS_REQUIRE(IsObject(), "JSON value is not an object");
    return object_;
  }

  /// Appends to an array value.
  void Push(JsonValue v) {
    EMIS_REQUIRE(IsArray(), "Push needs an array");
    array_.push_back(std::move(v));
  }
  /// Appends a key/value pair to an object value.
  void Set(std::string key, JsonValue v) {
    EMIS_REQUIRE(IsObject(), "Set needs an object");
    object_.emplace_back(std::move(key), std::move(v));
  }

  /// First value under `key`, or nullptr if absent (or not an object).
  const JsonValue* Find(std::string_view key) const noexcept {
    if (!IsObject()) return nullptr;
    for (const auto& [k, v] : object_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Serializes. indent < 0 renders compact one-line JSON; indent >= 0
  /// pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string EscapeJson(std::string_view s);

/// Strict recursive-descent parser; throws PreconditionError on malformed
/// input or trailing garbage. Numbers are parsed as doubles.
JsonValue ParseJson(std::string_view text);

}  // namespace emis::obs
