// Streaming run telemetry: a push-based NDJSON event stream (one JSON object
// per line) under the versioned "emis-telemetry/1" schema.
//
// The sink is a bounded in-memory queue of serialized lines. Producers (the
// Scheduler's round heartbeats, the PhaseTimeline's span-close hook, drivers
// emitting run_begin/run_end envelopes) push events; a consumer drains the
// queue to a stream when convenient. Bounding matters: a heartbeat per
// executed round on a long run must not grow memory without limit, so once
// the queue is full further *data* events are dropped and counted —
// `dropped_events` is explicit in the run_end envelope and surfaced as the
// `obs.telemetry_dropped` gauge in run reports, never silent. Control
// events (EmitControl) bypass the bound: the envelope that carries the drop
// accounting must itself never be dropped.
//
// Event vocabulary (all events carry "event"; the opening envelope carries
// "schema"):
//   run_begin   {schema, event, algorithm?, graph?, seed?, nodes?, edges?}
//   round       {event, round, awake, decided, finished, live_edges}
//   phase       {event, label, level, begin_round, end_round, rounds,
//                transmit_rounds, listen_rounds[, residual_edges_begin,
//                residual_edges_end]}   — one per closed span; the
//                transmit/listen fields are the span's attribution delta
//   run_end     {event, ..., emitted_events, dropped_events}
//   sweep_begin / sweep_end — sweep-level envelopes (emis_cli sweep); each
//                trial inside a sweep is framed by its own run_begin/run_end
//                pair carrying {n, seed_index} instead of the schema key
//
// Determinism: events are produced on the single scheduler thread in round
// order, so one run's drained content is a pure function of (graph, config).
// Sweeps give each trial a private sink and concatenate the drained blobs on
// the reducing thread in (size, seed) order — the same shard-and-merge
// discipline that makes sweep points bit-identical at any --jobs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "radio/types.hpp"

namespace emis::obs {

inline constexpr std::string_view kTelemetrySchema = "emis-telemetry/1";

struct StreamSinkConfig {
  /// Queue bound in events; data events past this are dropped and counted.
  std::size_t max_queued_events = 1 << 16;
  /// Scheduler heartbeat cadence: a `round` event every N executed rounds.
  Round heartbeat_every = 1;
};

class StreamSink {
 public:
  explicit StreamSink(StreamSinkConfig config = {}) : config_(config) {}

  /// Serializes and enqueues a data event; drops it (counting) when full.
  void Emit(const JsonValue& event);

  /// Enqueues a control envelope (run_begin/run_end/...), never dropped.
  void EmitControl(const JsonValue& event);

  /// Events accepted into the queue since construction/Clear (control
  /// events included), regardless of later draining.
  std::uint64_t EmittedEvents() const noexcept { return emitted_; }
  /// Data events rejected because the queue was full.
  std::uint64_t DroppedEvents() const noexcept { return dropped_; }
  std::size_t QueuedEvents() const noexcept { return queue_.size(); }

  Round HeartbeatEvery() const noexcept { return config_.heartbeat_every; }

  /// Writes all queued lines to `out` and clears the queue; counters are
  /// preserved so drop accounting survives incremental drains.
  void DrainTo(std::ostream& out);
  /// Same, returning the NDJSON blob (sweeps buffer per trial, then
  /// concatenate blobs in trial order).
  std::string DrainToString();

  void Clear();

 private:
  void Enqueue(const JsonValue& event, bool bounded);

  StreamSinkConfig config_;
  std::vector<std::string> queue_;  ///< serialized lines, '\n'-terminated
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Opens the destination named by an `--telemetry-out <path|fd>` spec: a
/// file path, or "fd:N" to write an already-open descriptor (e.g. "fd:3"
/// under a supervisor that collects telemetry on a pipe). This is the
/// library's one sanctioned file-writing path (see emis_lint io-in-library).
/// Throws PreconditionError when the destination cannot be opened.
std::unique_ptr<std::ostream> OpenTelemetryStream(const std::string& spec);

}  // namespace emis::obs
