#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

namespace emis::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  EMIS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
}

void Histogram::Observe(double x) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;
  ++counts_[i];
  ++total_count_;
  sum_ += x;
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 std::size_t count) {
  EMIS_REQUIRE(start > 0.0 && factor > 1.0, "need start > 0 and factor > 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

void Histogram::MergeFrom(const Histogram& other) {
  EMIS_REQUIRE(bounds_ == other.bounds_,
               "merging histograms requires identical bucket bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_count_ += other.total_count_;
  // Floating-point accumulation in a merge path is only deterministic when
  // the merge order is fixed; RunSweep merges shards in worker order (see
  // verify/experiment.cpp), which pins this sum bit-for-bit at any --jobs.
  sum_ += other.sum_;  // emis-lint: allow(float-accumulate-in-reduce)
}

double Histogram::UpperBound(std::size_t i) const {
  EMIS_REQUIRE(i < counts_.size(), "bucket index out of range");
  return i < bounds_.size() ? bounds_[i] : std::numeric_limits<double>::infinity();
}

std::uint64_t Histogram::BucketCount(std::size_t i) const {
  EMIS_REQUIRE(i < counts_.size(), "bucket index out of range");
  return counts_[i];
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> upper_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(std::move(upper_bounds)))
      .first->second;
}

Timer& MetricsRegistry::GetTimer(std::string_view name) {
  const auto it = timers_.find(name);
  if (it != timers_.end()) return it->second;
  return timers_.emplace(std::string(name), Timer{}).first->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    GetCounter(name).Inc(c.Value());
  }
  for (const auto& [name, g] : other.gauges_) {
    GetGauge(name).Set(g.Value());
  }
  for (const auto& [name, t] : other.timers_) {
    GetTimer(name).MergeFrom(t);
  }
  for (const auto& [name, h] : other.histograms_) {
    GetHistogram(name, h.Bounds()).MergeFrom(h);
  }
}

}  // namespace emis::obs
