// Phase-attributed accounting: where inside a run the rounds and energy went.
//
// Protocols annotate phase boundaries through NodeApi::Phase / SubPhase (see
// radio/process.hpp); the timeline snapshots the scheduler's energy totals at
// each boundary and records per-phase deltas of rounds, transmit/listen
// energy and (optionally) residual-edge counts. That makes the paper's
// per-phase arguments — Lemma 5 / Lemma 20 residual decay, Lemma 8's
// sender/receiver asymmetry — directly inspectable from a run report instead
// of inferable from end-of-run aggregates.
//
// Two levels exist:
//   * level 0 ("phase"): the protocol's outermost structure, e.g.
//     "luby-phase 3" or "delta-epoch 1". Residual edges are probed here.
//   * level 1 ("sub-phase"): windows inside a phase, e.g. "decay" backoffs.
//     Sub-phases close automatically when the enclosing phase does.
//
// Many nodes annotate the same boundary (every participant reaches the same
// scheduled round); consecutive annotations with the same label merge, so
// the first annotator opens the span and the rest are single string compares.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "radio/energy.hpp"
#include "radio/types.hpp"

namespace emis::obs {

class EnergyLedger;

struct PhaseSpan {
  std::string label;
  std::uint32_t level = 0;      ///< 0 = phase, 1 = sub-phase
  Round begin_round = 0;
  Round end_round = 0;          ///< exclusive
  std::uint64_t transmit_rounds = 0;  ///< Σ transmit energy spent in the span
  std::uint64_t listen_rounds = 0;    ///< Σ listen energy spent in the span
  std::uint64_t AwakeRounds() const noexcept {
    return transmit_rounds + listen_rounds;
  }
  Round Rounds() const noexcept { return end_round - begin_round; }
  bool has_residual = false;
  std::uint64_t residual_edges_begin = 0;
  std::uint64_t residual_edges_end = 0;
};

class PhaseTimeline {
 public:
  /// Index value for un-indexed labels ("decay" rather than "luby-phase 3").
  static constexpr std::uint64_t kNoIndex = ~0ULL;

  /// Bound by the Scheduler so boundary snapshots read live energy totals.
  /// The meter must outlive the timeline's use; null is tolerated (all
  /// energy deltas read as zero).
  void BindEnergy(const EnergyMeter* meter) noexcept { meter_ = meter; }

  /// Optional residual-graph probe, e.g. "edges between still-undecided
  /// nodes"; invoked once per level-0 boundary. Installed by RunMis; clear
  /// (pass nullptr) before the probed state dies.
  void SetResidualProbe(std::function<std::uint64_t()> probe) {
    residual_probe_ = std::move(probe);
  }

  /// Optional energy-attribution ledger: every span open/close updates the
  /// ledger's current (phase, sub) context, so the scheduler's per-round
  /// charges land under the span active at charge time. Bound by the
  /// Scheduler when both collectors are configured; clear (nullptr) when
  /// the ledger dies first.
  void BindLedger(EnergyLedger* ledger) noexcept { ledger_ = ledger; }

  /// Optional span-close hook (streaming telemetry's `phase` events).
  /// Invoked once per closed span, on the annotating thread, after the span
  /// is recorded. Clear (pass nullptr) before the sink dies.
  void SetSpanHook(std::function<void(const PhaseSpan&)> hook) {
    span_hook_ = std::move(hook);
  }

  /// Opens the level-0 span `base` (+ " <index>" if indexed) at `round`,
  /// closing any open spans. Re-annotating the currently open label is a
  /// no-op, which is how per-node annotations of one global boundary merge.
  void Annotate(std::string_view base, std::uint64_t index, Round round);

  /// Level-1 variant; the enclosing level-0 span stays open.
  void AnnotateSub(std::string_view base, std::uint64_t index, Round round);

  /// Closes all open spans at `round` (typically the run's final round).
  /// Idempotent; annotations afterwards start fresh spans.
  void Close(Round round);

  /// Closed spans in completion order. Call Close first to include the
  /// trailing open spans.
  const std::vector<PhaseSpan>& Spans() const noexcept { return spans_; }

  bool HasOpenPhase() const noexcept { return open_[0].active; }

  void Clear();

 private:
  struct OpenSpan {
    bool active = false;
    std::string base;
    std::uint64_t index = kNoIndex;
    Round begin_round = 0;
    std::uint64_t transmit_at_open = 0;
    std::uint64_t listen_at_open = 0;
    std::uint64_t residual_at_open = 0;
    bool has_residual = false;
  };

  bool Matches(const OpenSpan& open, std::string_view base,
               std::uint64_t index) const noexcept {
    return open.active && open.index == index && open.base == base;
  }
  void Open(std::uint32_t level, std::string_view base, std::uint64_t index,
            Round round, bool probe_residual, std::uint64_t residual);
  void CloseLevel(std::uint32_t level, Round round, bool probed,
                  std::uint64_t residual);

  const EnergyMeter* meter_ = nullptr;
  std::function<std::uint64_t()> residual_probe_;
  EnergyLedger* ledger_ = nullptr;
  std::function<void(const PhaseSpan&)> span_hook_;
  OpenSpan open_[2];
  std::vector<PhaseSpan> spans_;
};

/// Cross-trial aggregate of closed spans, keyed by (label, level): span
/// count, rounds and transmit/listen sums. All fields are integral keyed
/// sums, so accumulating per-trial aggregates in (size, seed) order yields
/// bit-identical content at any job count — the "merged timeline" view of a
/// sweep (per-trial timelines themselves cannot merge: rounds are relative
/// to each trial's own clock).
class PhaseAggregate {
 public:
  struct Row {
    std::uint64_t spans = 0;
    std::uint64_t rounds = 0;
    std::uint64_t transmit_rounds = 0;
    std::uint64_t listen_rounds = 0;
  };
  using Key = std::pair<std::string, std::uint32_t>;  ///< (label, level)

  /// Folds one run's closed spans into this aggregate.
  void Accumulate(const PhaseTimeline& timeline);
  void MergeFrom(const PhaseAggregate& other);

  const std::map<Key, Row>& Rows() const noexcept { return rows_; }
  bool Empty() const noexcept { return rows_.empty(); }

  /// Canonical text rendering ("label|level spans rounds tx lx" per row,
  /// key-sorted) — what the --jobs golden tests compare.
  std::string ToText() const;

 private:
  std::map<Key, Row> rows_;
};

}  // namespace emis::obs
