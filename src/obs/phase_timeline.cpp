#include "obs/phase_timeline.hpp"

namespace emis::obs {
namespace {

std::string MakeLabel(std::string_view base, std::uint64_t index) {
  std::string label(base);
  if (index != PhaseTimeline::kNoIndex) {
    label += ' ';
    label += std::to_string(index);
  }
  return label;
}

}  // namespace

void PhaseTimeline::Annotate(std::string_view base, std::uint64_t index,
                             Round round) {
  if (Matches(open_[0], base, index)) return;
  // One residual probe per boundary serves both the closing and the opening
  // span (probing twice would double the O(m) scan for the same round).
  const bool probed = static_cast<bool>(residual_probe_);
  const std::uint64_t residual = probed ? residual_probe_() : 0;
  CloseLevel(1, round, /*probed=*/false, 0);
  CloseLevel(0, round, probed, residual);
  Open(0, base, index, round, probed, residual);
}

void PhaseTimeline::AnnotateSub(std::string_view base, std::uint64_t index,
                                Round round) {
  if (Matches(open_[1], base, index)) return;
  CloseLevel(1, round, /*probed=*/false, 0);
  Open(1, base, index, round, /*probe_residual=*/false, 0);
}

void PhaseTimeline::Close(Round round) {
  const bool probed = open_[0].active && static_cast<bool>(residual_probe_);
  const std::uint64_t residual = probed ? residual_probe_() : 0;
  CloseLevel(1, round, /*probed=*/false, 0);
  CloseLevel(0, round, probed, residual);
}

void PhaseTimeline::Open(std::uint32_t level, std::string_view base,
                         std::uint64_t index, Round round, bool probe_residual,
                         std::uint64_t residual) {
  OpenSpan& open = open_[level];
  open.active = true;
  open.base.assign(base);
  open.index = index;
  open.begin_round = round;
  open.transmit_at_open = meter_ != nullptr ? meter_->TotalTransmit() : 0;
  open.listen_at_open = meter_ != nullptr ? meter_->TotalListen() : 0;
  open.has_residual = probe_residual;
  open.residual_at_open = residual;
}

void PhaseTimeline::CloseLevel(std::uint32_t level, Round round, bool probed,
                               std::uint64_t residual) {
  OpenSpan& open = open_[level];
  if (!open.active) return;
  PhaseSpan span;
  span.label = MakeLabel(open.base, open.index);
  span.level = level;
  span.begin_round = open.begin_round;
  // An annotation in the same round the span opened (e.g. a protocol that
  // decided instantly) yields an empty span; keep end >= begin regardless.
  span.end_round = round >= open.begin_round ? round : open.begin_round;
  const std::uint64_t tx = meter_ != nullptr ? meter_->TotalTransmit() : 0;
  const std::uint64_t lx = meter_ != nullptr ? meter_->TotalListen() : 0;
  span.transmit_rounds = tx - open.transmit_at_open;
  span.listen_rounds = lx - open.listen_at_open;
  span.has_residual = open.has_residual && probed;
  span.residual_edges_begin = open.residual_at_open;
  span.residual_edges_end = residual;
  spans_.push_back(std::move(span));
  open.active = false;
}

void PhaseTimeline::Clear() {
  spans_.clear();
  open_[0] = OpenSpan{};
  open_[1] = OpenSpan{};
}

}  // namespace emis::obs
