#include "obs/phase_timeline.hpp"

#include "obs/energy_ledger.hpp"

namespace emis::obs {
namespace {

std::string MakeLabel(std::string_view base, std::uint64_t index) {
  std::string label(base);
  if (index != PhaseTimeline::kNoIndex) {
    label += ' ';
    label += std::to_string(index);
  }
  return label;
}

}  // namespace

void PhaseTimeline::Annotate(std::string_view base, std::uint64_t index,
                             Round round) {
  if (Matches(open_[0], base, index)) return;
  // One residual probe per boundary serves both the closing and the opening
  // span (probing twice would double the O(m) scan for the same round).
  const bool probed = static_cast<bool>(residual_probe_);
  const std::uint64_t residual = probed ? residual_probe_() : 0;
  CloseLevel(1, round, /*probed=*/false, 0);
  CloseLevel(0, round, probed, residual);
  Open(0, base, index, round, probed, residual);
}

void PhaseTimeline::AnnotateSub(std::string_view base, std::uint64_t index,
                                Round round) {
  if (Matches(open_[1], base, index)) return;
  CloseLevel(1, round, /*probed=*/false, 0);
  Open(1, base, index, round, /*probe_residual=*/false, 0);
}

void PhaseTimeline::Close(Round round) {
  const bool probed = open_[0].active && static_cast<bool>(residual_probe_);
  const std::uint64_t residual = probed ? residual_probe_() : 0;
  CloseLevel(1, round, /*probed=*/false, 0);
  CloseLevel(0, round, probed, residual);
}

void PhaseTimeline::Open(std::uint32_t level, std::string_view base,
                         std::uint64_t index, Round round, bool probe_residual,
                         std::uint64_t residual) {
  OpenSpan& open = open_[level];
  open.active = true;
  open.base.assign(base);
  open.index = index;
  open.begin_round = round;
  open.transmit_at_open = meter_ != nullptr ? meter_->TotalTransmit() : 0;
  open.listen_at_open = meter_ != nullptr ? meter_->TotalListen() : 0;
  open.has_residual = probe_residual;
  open.residual_at_open = residual;
  if (ledger_ != nullptr) {
    // Charges from this round on belong to the new span. SetPhase clears
    // the sub context (a fresh level-0 span has no open sub-phase yet).
    const std::string label = MakeLabel(base, index);
    if (level == 0) {
      ledger_->SetPhase(label);
    } else {
      ledger_->SetSub(label);
    }
  }
}

void PhaseTimeline::CloseLevel(std::uint32_t level, Round round, bool probed,
                               std::uint64_t residual) {
  OpenSpan& open = open_[level];
  if (!open.active) return;
  PhaseSpan span;
  span.label = MakeLabel(open.base, open.index);
  span.level = level;
  span.begin_round = open.begin_round;
  // An annotation in the same round the span opened (e.g. a protocol that
  // decided instantly) yields an empty span; keep end >= begin regardless.
  span.end_round = round >= open.begin_round ? round : open.begin_round;
  const std::uint64_t tx = meter_ != nullptr ? meter_->TotalTransmit() : 0;
  const std::uint64_t lx = meter_ != nullptr ? meter_->TotalListen() : 0;
  span.transmit_rounds = tx - open.transmit_at_open;
  span.listen_rounds = lx - open.listen_at_open;
  span.has_residual = open.has_residual && probed;
  span.residual_edges_begin = open.residual_at_open;
  span.residual_edges_end = residual;
  spans_.push_back(std::move(span));
  open.active = false;
  if (ledger_ != nullptr) {
    // Until another span opens at this level, charges fall back to the
    // enclosing context (or to the unattributed key when a phase closes).
    if (level == 0) {
      ledger_->SetPhase({});
    } else {
      ledger_->SetSub({});
    }
  }
  if (span_hook_) span_hook_(spans_.back());
}

void PhaseTimeline::Clear() {
  spans_.clear();
  open_[0] = OpenSpan{};
  open_[1] = OpenSpan{};
}

void PhaseAggregate::Accumulate(const PhaseTimeline& timeline) {
  for (const PhaseSpan& s : timeline.Spans()) {
    Row& row = rows_[Key(s.label, s.level)];
    row.spans += 1;
    row.rounds += s.Rounds();
    row.transmit_rounds += s.transmit_rounds;
    row.listen_rounds += s.listen_rounds;
  }
}

void PhaseAggregate::MergeFrom(const PhaseAggregate& other) {
  for (const auto& [key, r] : other.rows_) {
    Row& row = rows_[key];
    row.spans += r.spans;
    row.rounds += r.rounds;
    row.transmit_rounds += r.transmit_rounds;
    row.listen_rounds += r.listen_rounds;
  }
}

std::string PhaseAggregate::ToText() const {
  std::string out;
  for (const auto& [key, r] : rows_) {
    out += key.first;
    out += '|';
    out += std::to_string(key.second);
    out += ' ';
    out += std::to_string(r.spans);
    out += ' ';
    out += std::to_string(r.rounds);
    out += ' ';
    out += std::to_string(r.transmit_rounds);
    out += ' ';
    out += std::to_string(r.listen_rounds);
    out += '\n';
  }
  return out;
}

}  // namespace emis::obs
