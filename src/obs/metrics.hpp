// Named run-time metrics: counters, gauges, fixed-bucket histograms and
// wall-clock timers.
//
// Design goal: cheap enough to leave enabled in perf runs. Call sites resolve
// a metric by name ONCE (a map lookup) and then hold a reference; the hot
// path is a single add/compare on a cached pointer. The registry owns all
// metrics; references stay valid for the registry's lifetime (node-based
// containers). Instances are not thread-safe — the simulator is
// single-threaded per scheduler, and a registry belongs to one run.
//
// Concurrency model: shard-and-merge. Parallel trial engines (see
// verify/parallel.hpp) give every worker thread its own private registry —
// the hot path stays lock- and atomic-free — and combine the shards after
// the join with MetricsRegistry::Merge. Merge is associative, so any merge
// tree over the shards yields the same counters/timers/histograms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "radio/types.hpp"

namespace emis::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t Value() const noexcept { return value_; }
  void Reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written sample of an instantaneous quantity.
class Gauge {
 public:
  void Set(double value) noexcept { value_ = value; }
  double Value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Buckets are defined by ascending upper bounds; an
/// implicit overflow bucket catches everything above the last bound. Bounds
/// are fixed at creation so observation cost is a small linear scan (bucket
/// counts are typically < 32).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double x) noexcept;

  /// `count` buckets with bounds start, start*factor, start*factor², ... —
  /// the natural scale for awake-round and latency distributions.
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               std::size_t count);

  /// Adds another histogram's counts into this one. The bucket bounds must
  /// be identical (same name ⇒ same bounds, per the registry contract).
  void MergeFrom(const Histogram& other);

  const std::vector<double>& Bounds() const noexcept { return bounds_; }

  std::size_t NumBuckets() const noexcept { return counts_.size(); }
  /// Upper bound of bucket i; the final bucket returns +infinity.
  double UpperBound(std::size_t i) const;
  std::uint64_t BucketCount(std::size_t i) const;
  std::uint64_t TotalCount() const noexcept { return total_count_; }
  double Sum() const noexcept { return sum_; }
  double Mean() const noexcept {
    return total_count_ == 0 ? 0.0 : sum_ / static_cast<double>(total_count_);
  }

 private:
  std::vector<double> bounds_;        // ascending; one fewer than counts_
  std::vector<std::uint64_t> counts_; // bounds_.size() + 1 (overflow bucket)
  std::uint64_t total_count_ = 0;
  double sum_ = 0.0;
};

/// Accumulated wall-clock sections, fed by ScopedTimer (scoped_timer.hpp).
class Timer {
 public:
  void Record(std::uint64_t ns) noexcept {
    ++count_;
    total_ns_ += ns;
    if (ns > max_ns_) max_ns_ = ns;
  }
  /// Folds another timer's sections into this one (sum counts/totals, max of
  /// maxima).
  void MergeFrom(const Timer& other) noexcept {
    count_ += other.count_;
    total_ns_ += other.total_ns_;
    if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  }

  std::uint64_t Count() const noexcept { return count_; }
  std::uint64_t TotalNs() const noexcept { return total_ns_; }
  std::uint64_t MaxNs() const noexcept { return max_ns_; }
  double MeanNs() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(total_ns_) / static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// Owns named metrics; get-or-create by name. Returned references remain
/// valid as long as the registry lives.
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// Creating an existing histogram returns it unchanged; the bounds of the
  /// first creation win (callers sharing a name must agree on buckets).
  Histogram& GetHistogram(std::string_view name, std::vector<double> upper_bounds);
  Timer& GetTimer(std::string_view name);

  /// Folds `other` into this registry: counters and timers add, histograms
  /// add bucket-wise (bounds must agree for shared names), gauges take the
  /// incoming sample (last write wins, as for Gauge::Set). Merge is
  /// associative — merging shards in any grouping gives identical counters,
  /// timers and histogram counts — which is what lets the parallel trial
  /// engine reduce per-worker shards in a fixed order and stay deterministic.
  void Merge(const MetricsRegistry& other);

  const std::map<std::string, Counter, std::less<>>& Counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& Gauges() const noexcept {
    return gauges_;
  }
  const std::map<std::string, Histogram, std::less<>>& Histograms() const noexcept {
    return histograms_;
  }
  const std::map<std::string, Timer, std::less<>>& Timers() const noexcept {
    return timers_;
  }

  bool Empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           timers_.empty();
  }

 private:
  // std::map gives reference stability across inserts (node-based), which is
  // what lets call sites cache the returned references.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Timer, std::less<>> timers_;
};

}  // namespace emis::obs
