#include "obs/jsonl_trace.hpp"

#include <ostream>

namespace emis::obs {

JsonlTraceSink::~JsonlTraceSink() { Flush(); }

void JsonlTraceSink::OnEvent(const TraceEvent& event) {
  // Hand-rolled emission: every field is numeric or a fixed enum name, and
  // per-event JsonValue construction would allocate on the hot path.
  std::ostream& out = *out_;
  out << "{\"round\":" << event.round << ",\"node\":" << event.node
      << ",\"action\":\"" << ToString(event.action) << '"';
  if (event.action == ActionKind::kTransmit) {
    out << ",\"payload\":" << event.payload;
  } else if (event.action == ActionKind::kListen) {
    out << ",\"reception\":\"" << ToString(event.reception.kind) << '"';
    if (event.reception.kind == ReceptionKind::kMessage) {
      out << ",\"recv_payload\":" << event.reception.payload;
    }
  }
  out << "}\n";
  ++events_written_;
}

void JsonlTraceSink::Flush() { out_->flush(); }

}  // namespace emis::obs
