// RAII wall-clock instrumentation for hot paths.
//
// ScopedTimer records the lifetime of a scope into an obs::Timer. A null
// timer disables the clock reads entirely, so instrumented code pays only a
// branch when metrics are off — which is what keeps the scheduler's
// per-round instrumentation within the <= 5% overhead budget (see
// bench_simulator's *Instrumented variants for the measurement).
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace emis::obs {

/// Monotonic wall-clock read in seconds, for elapsed-time measurement
/// (sweep wall clock, trial timings). This is the sanctioned clock access
/// point: library code outside src/obs/ must not read std::chrono clocks
/// directly (enforced by emis_lint's banned-clock rule), which keeps
/// nondeterministic time sources out of simulation results by construction —
/// wall-clock readings may only flow into observability fields.
inline double MonotonicSeconds() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class ScopedTimer {
 public:
  using Clock = std::chrono::steady_clock;

  explicit ScopedTimer(Timer* timer) noexcept : timer_(timer) {
    if (timer_ != nullptr) start_ = Clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (timer_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - start_)
                          .count();
      timer_->Record(static_cast<std::uint64_t>(ns));
    }
  }

 private:
  Timer* timer_;
  Clock::time_point start_{};
};

}  // namespace emis::obs
